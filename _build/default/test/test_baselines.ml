(* Tests for the baseline protocols: VABA single-shot agreement, the
   Dumbo-MVBA dispersal pipeline, and the slot-parallel SMR driver. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

type env = {
  engine : Sim.Engine.t;
  counters : Metrics.Counters.t;
  sched : Net.Sched.t;
  auth : Crypto.Auth.t;
  coin : Crypto.Threshold_coin.t;
  n : int;
  f : int;
}

let make_env ?(seed = 21) ~n () =
  let f = (n - 1) / 3 in
  let rng = Stdx.Rng.create seed in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
  { engine; counters; sched; auth; coin; n; f }

(* ---- VABA ---- *)

let run_vaba ?(seed = 21) ?(mute = []) ~n () =
  let env = make_env ~seed ~n () in
  let net =
    Net.Network.create ~engine:env.engine ~sched:env.sched
      ~counters:env.counters ~n
  in
  let decisions = Array.make n None in
  let views = Array.make n 0 in
  let parties =
    List.init n (fun me ->
        Baselines.Vaba.create ~net ~auth:env.auth ~coin:env.coin ~me ~f:env.f
          ~tag:1
          ~proposal:(fun ~me -> Printf.sprintf "value-%d" me)
          ~decide:(fun ~value ~view ->
            decisions.(me) <- Some value;
            views.(me) <- view)
          ())
  in
  List.iteri
    (fun i p ->
      if List.mem i mute then
        Net.Network.register net i (fun ~src:_ _ -> ())
      else Baselines.Vaba.start p)
    parties;
  ignore (Sim.Engine.run env.engine ~until:300.0 ());
  (decisions, views, env)

let test_vaba_agreement_and_termination () =
  let decisions, _, _ = run_vaba ~n:4 () in
  Array.iteri
    (fun i d -> checkb (Printf.sprintf "p%d decided" i) true (d <> None))
    decisions;
  let values =
    Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  checki "single decision value" 1 (List.length values)

let test_vaba_decides_a_proposed_value () =
  let decisions, _, _ = run_vaba ~n:4 () in
  match decisions.(0) with
  | Some v ->
    checkb "value is someone's proposal" true
      (List.exists
         (fun i -> String.equal v (Printf.sprintf "value-%d" i))
         [ 0; 1; 2; 3 ])
  | None -> Alcotest.fail "undecided"

let test_vaba_many_seeds () =
  List.iter
    (fun seed ->
      let decisions, views, _ = run_vaba ~seed ~n:4 () in
      let values =
        Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq compare
      in
      checki (Printf.sprintf "seed %d agreement" seed) 1 (List.length values);
      (* expected ~1.5 views; assert a loose upper bound *)
      Array.iter
        (fun v -> checkb "few views" true (v >= 1 && v <= 6))
        views)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_vaba_with_f_silent () =
  let n = 7 in
  let decisions, _, _ = run_vaba ~seed:30 ~mute:[ 5; 6 ] ~n () in
  for i = 0 to 4 do
    checkb (Printf.sprintf "p%d decided despite silence" i) true
      (decisions.(i) <> None)
  done;
  let values =
    Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  checki "agreement" 1 (List.length values)

let test_vaba_validity_predicate_blocks_invalid () =
  (* proposals failing the validity predicate can never be decided *)
  let env = make_env ~seed:31 ~n:4 () in
  let net =
    Net.Network.create ~engine:env.engine ~sched:env.sched
      ~counters:env.counters ~n:4
  in
  let decisions = Array.make 4 None in
  let parties =
    List.init 4 (fun me ->
        Baselines.Vaba.create ~net ~auth:env.auth ~coin:env.coin ~me ~f:env.f
          ~tag:2
          ~valid:(fun v -> not (String.equal v "poison"))
          ~proposal:(fun ~me ->
            if me = 0 then "poison" else Printf.sprintf "good-%d" me)
          ~decide:(fun ~value ~view:_ -> decisions.(me) <- Some value)
          ())
  in
  List.iter Baselines.Vaba.start parties;
  ignore (Sim.Engine.run env.engine ~until:300.0 ());
  Array.iter
    (fun d ->
      match d with
      | Some v -> checkb "never the invalid value" false (String.equal v "poison")
      | None -> Alcotest.fail "should still decide (some view elects a good leader)")
    decisions

(* ---- Dispersal ---- *)

let test_dispersal_cert_then_recast () =
  let env = make_env ~seed:32 ~n:4 () in
  let net =
    Net.Network.create ~engine:env.engine ~sched:env.sched
      ~counters:env.counters ~n:4
  in
  let reconstructed = Array.make 4 None in
  let parties =
    Array.init 4 (fun me ->
        Baselines.Dispersal.create ~net ~auth:env.auth ~me ~f:env.f
          ~on_reconstruct:(fun ~id:_ ~payload -> reconstructed.(me) <- Some payload))
  in
  let payload = String.init 999 (fun i -> Char.chr ((i * 31) mod 256)) in
  let cert = ref None in
  Baselines.Dispersal.disperse parties.(0) ~id:"x" ~payload
    ~on_cert:(fun c -> cert := Some c);
  ignore (Sim.Engine.run env.engine ());
  (match !cert with
  | None -> Alcotest.fail "no certificate"
  | Some c ->
    checkb "2f+1 signers" true (List.length c.Baselines.Dispersal.signers >= 3);
    (* nothing reconstructed until recast *)
    Array.iter (fun r -> checkb "not yet" true (r = None)) reconstructed;
    Baselines.Dispersal.recast parties.(2) c;
    ignore (Sim.Engine.run env.engine ());
    Array.iteri
      (fun i r ->
        match r with
        | Some p -> checkb (Printf.sprintf "p%d payload" i) true (String.equal p payload)
        | None -> Alcotest.fail (Printf.sprintf "p%d did not reconstruct" i))
      reconstructed)

let test_dispersal_cert_roundtrip () =
  let cert =
    { Baselines.Dispersal.id = "3:1";
      root = Crypto.Sha256.digest_string "root";
      data_len = 12345;
      signers = [ 0; 2; 3 ] }
  in
  (match Baselines.Dispersal.cert_of_string (Baselines.Dispersal.cert_to_string cert) with
  | Some c -> checkb "roundtrip" true (c = cert)
  | None -> Alcotest.fail "parse failed");
  checkb "garbage rejected" true (Baselines.Dispersal.cert_of_string "zzz" = None);
  checkb "empty rejected" true (Baselines.Dispersal.cert_of_string "" = None)

(* ---- Dumbo ---- *)

let run_dumbo ?(seed = 40) ~n () =
  let env = make_env ~seed ~n () in
  let disp_net =
    Net.Network.create ~engine:env.engine ~sched:env.sched
      ~counters:env.counters ~n
  in
  let vaba_net =
    Net.Network.create ~engine:env.engine ~sched:env.sched
      ~counters:env.counters ~n
  in
  let decisions = Array.make n None in
  let parties =
    List.init n (fun me ->
        Baselines.Dumbo.create ~disp_net ~vaba_net ~auth:env.auth ~coin:env.coin
          ~me ~f:env.f ~tag:7
          ~batch:(Printf.sprintf "batch-of-%d" me)
          ~decide:(fun ~batch -> decisions.(me) <- Some batch)
          ())
  in
  List.iter Baselines.Dumbo.start parties;
  ignore (Sim.Engine.run env.engine ~until:500.0 ());
  decisions

let test_dumbo_agreement () =
  let decisions = run_dumbo ~n:4 () in
  Array.iteri
    (fun i d -> checkb (Printf.sprintf "p%d decided" i) true (d <> None))
    decisions;
  let values =
    Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  checki "single batch decided" 1 (List.length values);
  checkb "batch is someone's" true
    (List.exists
       (fun i -> values = [ Printf.sprintf "batch-of-%d" i ])
       [ 0; 1; 2; 3 ])

let test_dumbo_many_seeds () =
  List.iter
    (fun seed ->
      let decisions = run_dumbo ~seed ~n:4 () in
      let values =
        Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq compare
      in
      checki (Printf.sprintf "seed %d" seed) 1 (List.length values))
    [ 41; 42; 43; 44; 45 ]

let test_dumbo_bits_beat_vaba_on_large_batches () =
  (* the whole point of Dumbo: for large batches, dispersal + agree-on-
     digest + recast moves far fewer bits than VABA carrying batches *)
  let n = 7 in
  let batch_bytes = 20_000 in
  let batch me = Printf.sprintf "b%d:" me ^ String.make batch_bytes 'q' in
  let run_v () =
    let env = make_env ~seed:50 ~n () in
    let net =
      Net.Network.create ~engine:env.engine ~sched:env.sched
        ~counters:env.counters ~n
    in
    let parties =
      List.init n (fun me ->
          Baselines.Vaba.create ~net ~auth:env.auth ~coin:env.coin ~me ~f:env.f
            ~tag:1
            ~proposal:(fun ~me -> batch me)
            ~decide:(fun ~value:_ ~view:_ -> ())
            ())
    in
    List.iter Baselines.Vaba.start parties;
    ignore (Sim.Engine.run env.engine ~until:500.0 ());
    Metrics.Counters.total_bits env.counters
  in
  let run_d () =
    let env = make_env ~seed:50 ~n () in
    let disp_net =
      Net.Network.create ~engine:env.engine ~sched:env.sched
        ~counters:env.counters ~n
    in
    let vaba_net =
      Net.Network.create ~engine:env.engine ~sched:env.sched
        ~counters:env.counters ~n
    in
    let parties =
      List.init n (fun me ->
          Baselines.Dumbo.create ~disp_net ~vaba_net ~auth:env.auth
            ~coin:env.coin ~me ~f:env.f ~tag:7 ~batch:(batch me)
            ~decide:(fun ~batch:_ -> ())
            ())
    in
    List.iter Baselines.Dumbo.start parties;
    ignore (Sim.Engine.run env.engine ~until:500.0 ());
    Metrics.Counters.total_bits env.counters
  in
  let vaba_bits = run_v () and dumbo_bits = run_d () in
  checkb
    (Printf.sprintf "dumbo %d < vaba %d" dumbo_bits vaba_bits)
    true (dumbo_bits < vaba_bits)

(* ---- SMR driver ---- *)

let run_smr ?(seed = 60) ~protocol ~n ~slots () =
  let env = make_env ~seed ~n () in
  let outputs = ref [] in
  let smr =
    Baselines.Smr.create ~engine:env.engine ~counters:env.counters
      ~sched:env.sched ~auth:env.auth ~coin:env.coin ~protocol ~n ~f:env.f
      ~concurrency:n ~total_slots:slots
      ~batch:(fun ~slot ~me -> Printf.sprintf "s%d-p%d" slot me)
      ~on_output:(fun ~slot ~value ~time ->
        outputs := (slot, value, time) :: !outputs)
      ()
  in
  Baselines.Smr.start smr;
  ignore (Sim.Engine.run env.engine ~until:1000.0 ());
  (smr, List.rev !outputs)

let test_smr_outputs_all_slots_in_order ~protocol () =
  let smr, outputs = run_smr ~protocol ~n:4 ~slots:10 () in
  checki "all slots output" 10 (Baselines.Smr.output_count smr);
  List.iteri
    (fun i (slot, _, _) -> checki "in order, no gaps" i slot)
    outputs;
  (* output times are monotone *)
  let times = List.map (fun (_, _, t) -> t) outputs in
  checkb "monotone times" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < 9) times)
       (List.tl times))

let test_smr_decisions_stable () =
  let smr, outputs = run_smr ~protocol:Baselines.Smr.Vaba_smr ~n:4 ~slots:6 () in
  List.iter
    (fun (slot, value, _) ->
      checks "query matches output" value
        (Option.get (Baselines.Smr.decided_value smr slot)))
    outputs

let test_smr_winner_takes_slot () =
  (* the fairness-relevant structural fact: each slot outputs exactly
     one party's batch; the other n-1 proposals are discarded *)
  let _, outputs = run_smr ~protocol:Baselines.Smr.Vaba_smr ~n:4 ~slots:8 () in
  List.iter
    (fun (slot, value, _) ->
      checkb "value names its slot" true
        (String.length value >= 2
        && String.sub value 0 (String.index value '-') = Printf.sprintf "s%d" slot))
    outputs

let () =
  Alcotest.run "baselines"
    [ ( "vaba",
        [ Alcotest.test_case "agreement + termination" `Quick
            test_vaba_agreement_and_termination;
          Alcotest.test_case "decides a proposal" `Quick
            test_vaba_decides_a_proposed_value;
          Alcotest.test_case "many seeds" `Slow test_vaba_many_seeds;
          Alcotest.test_case "f silent" `Quick test_vaba_with_f_silent;
          Alcotest.test_case "validity predicate" `Quick
            test_vaba_validity_predicate_blocks_invalid ] );
      ( "dispersal",
        [ Alcotest.test_case "cert then recast" `Quick test_dispersal_cert_then_recast;
          Alcotest.test_case "cert roundtrip" `Quick test_dispersal_cert_roundtrip ] );
      ( "dumbo",
        [ Alcotest.test_case "agreement" `Quick test_dumbo_agreement;
          Alcotest.test_case "many seeds" `Slow test_dumbo_many_seeds;
          Alcotest.test_case "bits beat vaba" `Slow
            test_dumbo_bits_beat_vaba_on_large_batches ] );
      ( "smr",
        [ Alcotest.test_case "vaba smr slots in order" `Quick
            (test_smr_outputs_all_slots_in_order ~protocol:Baselines.Smr.Vaba_smr);
          Alcotest.test_case "dumbo smr slots in order" `Slow
            (test_smr_outputs_all_slots_in_order ~protocol:Baselines.Smr.Dumbo_smr);
          Alcotest.test_case "decisions stable" `Quick test_smr_decisions_stable;
          Alcotest.test_case "winner takes slot" `Quick test_smr_winner_takes_slot ] )
    ]
