(* Tests for the crypto substrate: SHA-256 against FIPS 180-4 vectors,
   HMAC against RFC 4231, field/Shamir/coin algebra, GF(256), Reed-
   Solomon, Merkle trees, and the modeled signature scheme. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- SHA-256 ---- *)

let hex = Crypto.Sha256.to_hex

let test_sha256_empty () =
  checks "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Crypto.Sha256.digest_string ""))

let test_sha256_abc () =
  checks "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Crypto.Sha256.digest_string "abc"))

let test_sha256_448bit () =
  checks "two-block FIPS vector"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex
       (Crypto.Sha256.digest_string
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha256_million_a () =
  checks "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Crypto.Sha256.digest_string (String.make 1_000_000 'a')))

let test_sha256_block_boundaries () =
  (* lengths around the 64-byte block and 56-byte padding boundary must
     round-trip through the incremental interface identically *)
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr (i mod 256)) in
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.feed ctx s;
      checks
        (Printf.sprintf "len %d" len)
        (hex (Crypto.Sha256.digest_string s))
        (hex (Crypto.Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 1000 ]

let test_sha256_incremental_chunks () =
  let s = String.init 500 (fun i -> Char.chr ((i * 7) mod 256)) in
  let ctx = Crypto.Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 3; 64; 100; 332 ] in
  List.iter
    (fun sz ->
      Crypto.Sha256.feed ctx (String.sub s !pos sz);
      pos := !pos + sz)
    sizes;
  checks "chunked = whole"
    (hex (Crypto.Sha256.digest_string s))
    (hex (Crypto.Sha256.finalize ctx))

let test_sha256_finalize_once () =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx "x";
  ignore (Crypto.Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Crypto.Sha256.finalize ctx))

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  checks "rfc4231 #1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Crypto.Sha256.hmac ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  checks "rfc4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Crypto.Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_rfc4231_case6_long_key () =
  let key = String.make 131 '\xaa' in
  checks "rfc4231 #6 (key > block)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Crypto.Sha256.hmac ~key
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let prop_sha256_injective_on_samples =
  QCheck.Test.make ~name:"sha256: distinct short strings hash distinctly"
    ~count:300
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      a = b
      || Crypto.Sha256.digest_string a <> Crypto.Sha256.digest_string b)

(* ---- GF(256) ---- *)

let elem = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

let prop_gf256_add_assoc =
  QCheck.Test.make ~name:"gf256 add associative/commutative" ~count:300
    QCheck.(triple elem elem elem)
    (fun (a, b, c) ->
      Crypto.Gf256.add a (Crypto.Gf256.add b c)
      = Crypto.Gf256.add (Crypto.Gf256.add a b) c
      && Crypto.Gf256.add a b = Crypto.Gf256.add b a)

let prop_gf256_mul_assoc_comm =
  QCheck.Test.make ~name:"gf256 mul associative/commutative" ~count:300
    QCheck.(triple elem elem elem)
    (fun (a, b, c) ->
      Crypto.Gf256.mul a (Crypto.Gf256.mul b c)
      = Crypto.Gf256.mul (Crypto.Gf256.mul a b) c
      && Crypto.Gf256.mul a b = Crypto.Gf256.mul b a)

let prop_gf256_distributive =
  QCheck.Test.make ~name:"gf256 distributivity" ~count:300
    QCheck.(triple elem elem elem)
    (fun (a, b, c) ->
      Crypto.Gf256.mul a (Crypto.Gf256.add b c)
      = Crypto.Gf256.add (Crypto.Gf256.mul a b) (Crypto.Gf256.mul a c))

let prop_gf256_inverse =
  QCheck.Test.make ~name:"gf256 x * inv x = 1" ~count:255 nonzero (fun x ->
      Crypto.Gf256.mul x (Crypto.Gf256.inv x) = 1)

let prop_gf256_div =
  QCheck.Test.make ~name:"gf256 (a*b)/b = a" ~count:300
    QCheck.(pair elem nonzero)
    (fun (a, b) -> Crypto.Gf256.div (Crypto.Gf256.mul a b) b = a)

let test_gf256_identities () =
  for x = 0 to 255 do
    checki "x + x = 0" 0 (Crypto.Gf256.add x x);
    checki "x * 1 = x" x (Crypto.Gf256.mul x 1);
    checki "x * 0 = 0" 0 (Crypto.Gf256.mul x 0)
  done;
  checki "aes sanity: 0x53 * 0xca = 1" 1 (Crypto.Gf256.mul 0x53 0xca)

let test_gf256_pow () =
  checki "x^0" 1 (Crypto.Gf256.pow 7 0);
  checki "0^0" 1 (Crypto.Gf256.pow 0 0);
  checki "0^5" 0 (Crypto.Gf256.pow 0 5);
  checki "x^3 = x*x*x"
    (Crypto.Gf256.mul 9 (Crypto.Gf256.mul 9 9))
    (Crypto.Gf256.pow 9 3);
  (* Fermat: x^255 = 1 for x <> 0 *)
  for x = 1 to 255 do
    checki "x^255 = 1" 1 (Crypto.Gf256.pow x 255)
  done

let test_gf256_range_check () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Gf256: element out of range") (fun () ->
      ignore (Crypto.Gf256.add 256 0))

let test_gf256_eval_poly () =
  (* p(x) = 3 + 2x over GF(256): p(0)=3, p(1)=1 (3 xor 2) *)
  checki "p(0)" 3 (Crypto.Gf256.eval_poly [| 3; 2 |] 0);
  checki "p(1)" 1 (Crypto.Gf256.eval_poly [| 3; 2 |] 1)

(* ---- Reed-Solomon ---- *)

let test_rs_systematic () =
  let c = Crypto.Reed_solomon.make ~k:2 ~n:4 in
  let data = "abcdef" in
  let frags = Crypto.Reed_solomon.encode c data in
  checki "fragment count" 4 (Array.length frags);
  checks "systematic prefix" "abc" frags.(0);
  checks "systematic suffix" "def" frags.(1)

let test_rs_roundtrip_data_fragments () =
  let c = Crypto.Reed_solomon.make ~k:3 ~n:7 in
  let data = "the quick brown fox jumps over" in
  let frags = Crypto.Reed_solomon.encode c data in
  let got =
    Crypto.Reed_solomon.decode c ~data_len:(String.length data)
      [ (0, frags.(0)); (1, frags.(1)); (2, frags.(2)) ]
  in
  checks "identity from data shards" data got

let test_rs_roundtrip_parity_only () =
  let c = Crypto.Reed_solomon.make ~k:3 ~n:7 in
  let data = "the quick brown fox jumps over" in
  let frags = Crypto.Reed_solomon.encode c data in
  let got =
    Crypto.Reed_solomon.decode c ~data_len:(String.length data)
      [ (4, frags.(4)); (5, frags.(5)); (6, frags.(6)) ]
  in
  checks "identity from parity shards" data got

let test_rs_roundtrip_mixed () =
  let c = Crypto.Reed_solomon.make ~k:4 ~n:10 in
  let data = String.init 97 (fun i -> Char.chr ((i * 13) mod 256)) in
  let frags = Crypto.Reed_solomon.encode c data in
  let got =
    Crypto.Reed_solomon.decode c ~data_len:(String.length data)
      [ (9, frags.(9)); (0, frags.(0)); (5, frags.(5)); (7, frags.(7)) ]
  in
  checks "identity from mixed shards" data got

let test_rs_not_enough_fragments () =
  let c = Crypto.Reed_solomon.make ~k:3 ~n:5 in
  let frags = Crypto.Reed_solomon.encode c "hello world" in
  Alcotest.check_raises "too few"
    (Invalid_argument "Reed_solomon.decode: not enough fragments") (fun () ->
      ignore
        (Crypto.Reed_solomon.decode c ~data_len:11
           [ (0, frags.(0)); (1, frags.(1)) ]))

let test_rs_duplicate_indices_dont_count () =
  let c = Crypto.Reed_solomon.make ~k:3 ~n:5 in
  let frags = Crypto.Reed_solomon.encode c "hello world" in
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Reed_solomon.decode: not enough fragments") (fun () ->
      ignore
        (Crypto.Reed_solomon.decode c ~data_len:11
           [ (0, frags.(0)); (0, frags.(0)); (1, frags.(1)) ]))

let test_rs_empty_payload () =
  let c = Crypto.Reed_solomon.make ~k:2 ~n:4 in
  let frags = Crypto.Reed_solomon.encode c "" in
  checki "nonzero fragment size" 1 (String.length frags.(0));
  checks "empty roundtrip" ""
    (Crypto.Reed_solomon.decode c ~data_len:0 [ (2, frags.(2)); (3, frags.(3)) ])

let test_rs_bad_params () =
  Alcotest.check_raises "k > n"
    (Invalid_argument "Reed_solomon.make: need 0 < k <= n <= 256") (fun () ->
      ignore (Crypto.Reed_solomon.make ~k:5 ~n:4))

let prop_rs_any_k_subset =
  QCheck.Test.make ~name:"reed-solomon: every k-subset reconstructs" ~count:60
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.int_range 1 200)) (QCheck.int_range 0 1000))
    (fun (data, seed) ->
      let k = 3 and n = 8 in
      let c = Crypto.Reed_solomon.make ~k ~n in
      let frags = Crypto.Reed_solomon.encode c data in
      let rng = Stdx.Rng.create seed in
      let subset = Stdx.Rng.sample_without_replacement rng ~k ~n in
      let pieces = List.map (fun i -> (i, frags.(i))) subset in
      Crypto.Reed_solomon.decode c ~data_len:(String.length data) pieces = data)

(* ---- Merkle ---- *)

let leaves n = Array.init n (fun i -> Printf.sprintf "leaf-%d" i)

let test_merkle_single_leaf () =
  let t = Crypto.Merkle.build [| "only" |] in
  checki "leaf count" 1 (Crypto.Merkle.leaf_count t);
  let proof = Crypto.Merkle.prove t 0 in
  checkb "verifies" true
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root t) ~leaf_count:1
       ~leaf:"only" proof)

let test_merkle_all_proofs_verify () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let t = Crypto.Merkle.build ls in
      let root = Crypto.Merkle.root t in
      for i = 0 to n - 1 do
        let proof = Crypto.Merkle.prove t i in
        checkb
          (Printf.sprintf "n=%d i=%d" n i)
          true
          (Crypto.Merkle.verify ~root ~leaf_count:n ~leaf:ls.(i) proof)
      done)
    [ 2; 3; 4; 5; 7; 8; 13 ]

let test_merkle_wrong_leaf_rejected () =
  let ls = leaves 7 in
  let t = Crypto.Merkle.build ls in
  let proof = Crypto.Merkle.prove t 3 in
  checkb "tampered leaf" false
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root t) ~leaf_count:7
       ~leaf:"evil" proof)

let test_merkle_wrong_index_rejected () =
  let ls = leaves 8 in
  let t = Crypto.Merkle.build ls in
  let proof = Crypto.Merkle.prove t 2 in
  let moved = { proof with Crypto.Merkle.leaf_index = 3 } in
  checkb "moved proof" false
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root t) ~leaf_count:8
       ~leaf:ls.(2) moved)

let test_merkle_wrong_root_rejected () =
  let ls = leaves 4 in
  let t = Crypto.Merkle.build ls in
  let proof = Crypto.Merkle.prove t 0 in
  checkb "wrong root" false
    (Crypto.Merkle.verify ~root:(String.make 32 '\x00') ~leaf_count:4
       ~leaf:ls.(0) proof)

let test_merkle_truncated_path_rejected () =
  let ls = leaves 8 in
  let t = Crypto.Merkle.build ls in
  let proof = Crypto.Merkle.prove t 5 in
  let truncated =
    { proof with Crypto.Merkle.path = List.tl proof.Crypto.Merkle.path }
  in
  checkb "truncated path" false
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root t) ~leaf_count:8
       ~leaf:ls.(5) truncated)

let test_merkle_roots_differ () =
  let a = Crypto.Merkle.build (leaves 4) in
  let b = Crypto.Merkle.build [| "leaf-0"; "leaf-1"; "leaf-2"; "other" |] in
  checkb "roots differ" false
    (String.equal (Crypto.Merkle.root a) (Crypto.Merkle.root b))

let test_merkle_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: no leaves")
    (fun () -> ignore (Crypto.Merkle.build [||]))

(* ---- Field ---- *)

let field_elem = QCheck.int_range 0 (Crypto.Field.p - 1)

let prop_field_add_inverse =
  QCheck.Test.make ~name:"field a + (-a) = 0" ~count:300 field_elem (fun a ->
      Crypto.Field.add a (Crypto.Field.neg a) = 0)

let prop_field_mul_inverse =
  QCheck.Test.make ~name:"field a * a^-1 = 1" ~count:100
    (QCheck.int_range 1 (Crypto.Field.p - 1))
    (fun a -> Crypto.Field.mul a (Crypto.Field.inv a) = 1)

let prop_field_distributive =
  QCheck.Test.make ~name:"field distributivity" ~count:300
    QCheck.(triple field_elem field_elem field_elem)
    (fun (a, b, c) ->
      Crypto.Field.mul a (Crypto.Field.add b c)
      = Crypto.Field.add (Crypto.Field.mul a b) (Crypto.Field.mul a c))

let test_field_of_int_negative () =
  checki "canonical negative" (Crypto.Field.p - 5) (Crypto.Field.of_int (-5));
  checki "wraps modulus" 1 (Crypto.Field.of_int (Crypto.Field.p + 1))

let test_field_pow () =
  checki "x^0" 1 (Crypto.Field.pow 12345 0);
  checki "fermat" 1 (Crypto.Field.pow 2 (Crypto.Field.p - 1));
  checki "x^3" (Crypto.Field.mul 7 (Crypto.Field.mul 7 7)) (Crypto.Field.pow 7 3)

let test_field_lagrange_constant () =
  (* constant polynomial 42 through three points *)
  checki "constant" 42
    (Crypto.Field.lagrange_at_zero [ (1, 42); (2, 42); (3, 42) ])

let test_field_lagrange_linear () =
  (* p(x) = 10 + 3x: p(1)=13, p(2)=16 -> p(0)=10 *)
  checki "linear" 10 (Crypto.Field.lagrange_at_zero [ (1, 13); (2, 16) ])

let test_field_lagrange_rejects_duplicates () =
  Alcotest.check_raises "dup x"
    (Invalid_argument
       "Field.lagrange_at_zero: x-coordinates must be distinct and non-zero")
    (fun () -> ignore (Crypto.Field.lagrange_at_zero [ (1, 2); (1, 3) ]))

let prop_field_interpolate_matches_eval =
  QCheck.Test.make ~name:"field interpolate_at recovers polynomial evaluations"
    ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 1000))
    (fun (seed, x) ->
      let rng = Stdx.Rng.create seed in
      let degree = 1 + Stdx.Rng.int rng 4 in
      let coeffs = Array.init (degree + 1) (fun _ -> Stdx.Rng.int rng Crypto.Field.p) in
      (* degree+1 sample points determine the polynomial *)
      let points =
        List.init (degree + 1) (fun i ->
            (i + 1, Crypto.Field.eval_poly coeffs (i + 1)))
      in
      Crypto.Field.interpolate_at points ~x = Crypto.Field.eval_poly coeffs x)

let test_field_interpolate_duplicates_rejected () =
  Alcotest.check_raises "dups"
    (Invalid_argument "Field.interpolate_at: duplicate x-coordinates")
    (fun () -> ignore (Crypto.Field.interpolate_at [ (1, 2); (1, 3) ] ~x:5))

let test_hmac_key_exactly_block_size () =
  (* 64-byte key takes neither the hash-down nor the pad path's zeroes *)
  let key = String.make 64 'k' in
  let a = Crypto.Sha256.hmac ~key "msg" in
  let b = Crypto.Sha256.hmac ~key:(key ^ "") "msg" in
  checkb "deterministic" true (String.equal a b);
  checkb "differs from 63-byte key" false
    (String.equal a (Crypto.Sha256.hmac ~key:(String.make 63 'k') "msg"))

(* ---- Shamir ---- *)

let test_shamir_roundtrip () =
  let rng = Stdx.Rng.create 77 in
  let secret = 123456789 in
  let shares = Crypto.Shamir.deal ~rng ~secret ~threshold:3 ~shares:7 in
  checki "share count" 7 (List.length shares);
  let some = List.filteri (fun i _ -> i mod 2 = 0) shares in
  checki "reconstructed" secret (Crypto.Shamir.reconstruct ~threshold:3 some)

let test_shamir_any_threshold_subset () =
  let rng = Stdx.Rng.create 78 in
  let secret = 42 in
  let shares = Array.of_list (Crypto.Shamir.deal ~rng ~secret ~threshold:2 ~shares:5) in
  for i = 0 to 4 do
    for j = 0 to 4 do
      if i <> j then
        checki "every pair" secret
          (Crypto.Shamir.reconstruct ~threshold:2 [ shares.(i); shares.(j) ])
    done
  done

let test_shamir_below_threshold_random () =
  (* One share of a threshold-2 sharing determines nothing: two dealings
     of different secrets can produce the same single share. Statistical
     smoke check: the share value is not the secret itself. *)
  let rng = Stdx.Rng.create 79 in
  let shares = Crypto.Shamir.deal ~rng ~secret:5 ~threshold:2 ~shares:4 in
  Alcotest.check_raises "not enough shares"
    (Invalid_argument "Shamir.reconstruct: not enough distinct shares")
    (fun () ->
      ignore (Crypto.Shamir.reconstruct ~threshold:2 [ List.hd shares ]))

let test_shamir_duplicate_shares_rejected () =
  let rng = Stdx.Rng.create 80 in
  let shares = Crypto.Shamir.deal ~rng ~secret:5 ~threshold:2 ~shares:4 in
  let s = List.hd shares in
  Alcotest.check_raises "duplicates don't count"
    (Invalid_argument "Shamir.reconstruct: not enough distinct shares")
    (fun () -> ignore (Crypto.Shamir.reconstruct ~threshold:2 [ s; s ]))

let prop_shamir_roundtrip =
  QCheck.Test.make ~name:"shamir: deal then reconstruct = secret" ~count:100
    QCheck.(pair (int_bound (Crypto.Field.p - 1)) (int_range 0 10000))
    (fun (secret, seed) ->
      let rng = Stdx.Rng.create seed in
      let shares = Crypto.Shamir.deal ~rng ~secret ~threshold:4 ~shares:10 in
      let rng2 = Stdx.Rng.create (seed + 1) in
      let idx = Stdx.Rng.sample_without_replacement rng2 ~k:4 ~n:10 in
      let subset = List.map (List.nth shares) idx in
      Crypto.Shamir.reconstruct ~threshold:4 subset = Crypto.Field.of_int secret)

(* ---- Threshold coin ---- *)

let coin_setup ?(seed = 5) ~n ~f () =
  Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.create seed) ~n ~f

let test_coin_agreement_across_subsets () =
  let n = 7 and f = 2 in
  let coin = coin_setup ~n ~f () in
  let shares =
    List.init n (fun holder ->
        Crypto.Threshold_coin.make_share coin ~holder ~instance:3)
  in
  (* every (f+1)-subset must elect the same leader *)
  let expected =
    Crypto.Threshold_coin.combine coin ~instance:3
      (List.filteri (fun i _ -> i < f + 1) shares)
  in
  checkb "some leader" true (expected <> None);
  List.iter
    (fun offset ->
      let subset = List.filteri (fun i _ -> i >= offset && i < offset + f + 1) shares in
      checkb "same leader" true
        (Crypto.Threshold_coin.combine coin ~instance:3 subset = expected))
    [ 1; 2; 3; 4 ]

let test_coin_below_threshold () =
  let coin = coin_setup ~n:7 ~f:2 () in
  let shares =
    List.init 2 (fun holder ->
        Crypto.Threshold_coin.make_share coin ~holder ~instance:1)
  in
  checkb "f shares insufficient" true
    (Crypto.Threshold_coin.combine coin ~instance:1 shares = None)

let test_coin_rejects_forged_share () =
  let coin = coin_setup ~n:4 ~f:1 () in
  let good = Crypto.Threshold_coin.make_share coin ~holder:0 ~instance:9 in
  let forged = { good with Crypto.Threshold_coin.value = good.value + 1 } in
  checkb "verify rejects" false (Crypto.Threshold_coin.verify_share coin forged);
  let other = Crypto.Threshold_coin.make_share coin ~holder:1 ~instance:9 in
  checkb "combine ignores forgeries" true
    (Crypto.Threshold_coin.combine coin ~instance:9 [ forged; other ] = None)

let test_coin_ignores_wrong_instance () =
  let coin = coin_setup ~n:4 ~f:1 () in
  let s0 = Crypto.Threshold_coin.make_share coin ~holder:0 ~instance:1 in
  let s1 = Crypto.Threshold_coin.make_share coin ~holder:1 ~instance:2 in
  checkb "mixed instances insufficient" true
    (Crypto.Threshold_coin.combine coin ~instance:1 [ s0; s1 ] = None)

let test_coin_leader_in_range () =
  let n = 10 and f = 3 in
  let coin = coin_setup ~n ~f () in
  for w = 0 to 50 do
    let shares =
      List.init (f + 1) (fun holder ->
          Crypto.Threshold_coin.make_share coin ~holder ~instance:w)
    in
    match Crypto.Threshold_coin.combine coin ~instance:w shares with
    | Some leader -> checkb "in range" true (leader >= 0 && leader < n)
    | None -> Alcotest.fail "combine failed"
  done

let test_coin_fairness_rough () =
  (* over many instances, every process should be elected sometimes *)
  let n = 4 and f = 1 in
  let coin = coin_setup ~seed:99 ~n ~f () in
  let counts = Array.make n 0 in
  let instances = 400 in
  for w = 0 to instances - 1 do
    let shares =
      List.init (f + 1) (fun holder ->
          Crypto.Threshold_coin.make_share coin ~holder ~instance:w)
    in
    match Crypto.Threshold_coin.combine coin ~instance:w shares with
    | Some leader -> counts.(leader) <- counts.(leader) + 1
    | None -> Alcotest.fail "combine failed"
  done;
  Array.iteri
    (fun i c ->
      checkb
        (Printf.sprintf "p%d elected a fair share (%d)" i c)
        true
        (c > instances / n / 3 && c < instances * 3 / n))
    counts

let test_coin_duplicate_holder_shares_dont_count () =
  let coin = coin_setup ~n:4 ~f:1 () in
  let s = Crypto.Threshold_coin.make_share coin ~holder:2 ~instance:5 in
  checkb "duplicate holder" true
    (Crypto.Threshold_coin.combine coin ~instance:5 [ s; s ] = None)

(* ---- Auth ---- *)

let test_auth_sign_verify () =
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.create 1) ~n:4 in
  let s = Crypto.Auth.sign auth ~signer:2 "hello" in
  checkb "verifies" true (Crypto.Auth.verify auth ~msg:"hello" s);
  checkb "wrong msg" false (Crypto.Auth.verify auth ~msg:"hellp" s)

let test_auth_cross_signer_rejected () =
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.create 2) ~n:4 in
  let s = Crypto.Auth.sign auth ~signer:0 "m" in
  let forged = { s with Crypto.Auth.signer = 1 } in
  checkb "signer swap rejected" false (Crypto.Auth.verify auth ~msg:"m" forged)

let test_auth_cert_assembly () =
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.create 3) ~n:4 in
  let sigs = List.init 3 (fun i -> Crypto.Auth.sign auth ~signer:i "v") in
  (match Crypto.Auth.make_cert auth ~threshold:3 ~msg:"v" sigs with
  | Some cert ->
    checkb "cert verifies" true (Crypto.Auth.verify_cert auth ~threshold:3 cert)
  | None -> Alcotest.fail "cert should assemble");
  checkb "threshold unmet" true
    (Crypto.Auth.make_cert auth ~threshold:4 ~msg:"v" sigs = None)

let test_auth_cert_ignores_bad_sigs () =
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.create 4) ~n:4 in
  let good = List.init 2 (fun i -> Crypto.Auth.sign auth ~signer:i "v") in
  let bad = Crypto.Auth.sign auth ~signer:2 "other" in
  checkb "bad sig doesn't count" true
    (Crypto.Auth.make_cert auth ~threshold:3 ~msg:"v" (bad :: good) = None)

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "448-bit vector" `Quick test_sha256_448bit;
          Alcotest.test_case "million a's" `Slow test_sha256_million_a;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
          Alcotest.test_case "incremental chunks" `Quick test_sha256_incremental_chunks;
          Alcotest.test_case "finalize once" `Quick test_sha256_finalize_once;
          Alcotest.test_case "hmac rfc4231 #1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "hmac rfc4231 #2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "hmac long key" `Quick test_hmac_rfc4231_case6_long_key;
          QCheck_alcotest.to_alcotest prop_sha256_injective_on_samples ] );
      ( "gf256",
        [ QCheck_alcotest.to_alcotest prop_gf256_add_assoc;
          QCheck_alcotest.to_alcotest prop_gf256_mul_assoc_comm;
          QCheck_alcotest.to_alcotest prop_gf256_distributive;
          QCheck_alcotest.to_alcotest prop_gf256_inverse;
          QCheck_alcotest.to_alcotest prop_gf256_div;
          Alcotest.test_case "identities" `Quick test_gf256_identities;
          Alcotest.test_case "pow" `Quick test_gf256_pow;
          Alcotest.test_case "range check" `Quick test_gf256_range_check;
          Alcotest.test_case "eval_poly" `Quick test_gf256_eval_poly ] );
      ( "reed-solomon",
        [ Alcotest.test_case "systematic" `Quick test_rs_systematic;
          Alcotest.test_case "roundtrip data" `Quick test_rs_roundtrip_data_fragments;
          Alcotest.test_case "roundtrip parity" `Quick test_rs_roundtrip_parity_only;
          Alcotest.test_case "roundtrip mixed" `Quick test_rs_roundtrip_mixed;
          Alcotest.test_case "not enough" `Quick test_rs_not_enough_fragments;
          Alcotest.test_case "duplicates" `Quick test_rs_duplicate_indices_dont_count;
          Alcotest.test_case "empty payload" `Quick test_rs_empty_payload;
          Alcotest.test_case "bad params" `Quick test_rs_bad_params;
          QCheck_alcotest.to_alcotest prop_rs_any_k_subset ] );
      ( "merkle",
        [ Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "all proofs verify" `Quick test_merkle_all_proofs_verify;
          Alcotest.test_case "wrong leaf" `Quick test_merkle_wrong_leaf_rejected;
          Alcotest.test_case "wrong index" `Quick test_merkle_wrong_index_rejected;
          Alcotest.test_case "wrong root" `Quick test_merkle_wrong_root_rejected;
          Alcotest.test_case "truncated path" `Quick test_merkle_truncated_path_rejected;
          Alcotest.test_case "roots differ" `Quick test_merkle_roots_differ;
          Alcotest.test_case "empty rejected" `Quick test_merkle_empty_rejected ] );
      ( "field",
        [ QCheck_alcotest.to_alcotest prop_field_add_inverse;
          QCheck_alcotest.to_alcotest prop_field_mul_inverse;
          QCheck_alcotest.to_alcotest prop_field_distributive;
          Alcotest.test_case "of_int negative" `Quick test_field_of_int_negative;
          Alcotest.test_case "pow" `Quick test_field_pow;
          Alcotest.test_case "lagrange constant" `Quick test_field_lagrange_constant;
          Alcotest.test_case "lagrange linear" `Quick test_field_lagrange_linear;
          Alcotest.test_case "lagrange duplicates" `Quick
            test_field_lagrange_rejects_duplicates;
          QCheck_alcotest.to_alcotest prop_field_interpolate_matches_eval;
          Alcotest.test_case "interpolate duplicates" `Quick
            test_field_interpolate_duplicates_rejected;
          Alcotest.test_case "hmac block-size key" `Quick
            test_hmac_key_exactly_block_size ] );
      ( "shamir",
        [ Alcotest.test_case "roundtrip" `Quick test_shamir_roundtrip;
          Alcotest.test_case "any threshold subset" `Quick
            test_shamir_any_threshold_subset;
          Alcotest.test_case "below threshold" `Quick test_shamir_below_threshold_random;
          Alcotest.test_case "duplicates rejected" `Quick
            test_shamir_duplicate_shares_rejected;
          QCheck_alcotest.to_alcotest prop_shamir_roundtrip ] );
      ( "threshold-coin",
        [ Alcotest.test_case "agreement across subsets" `Quick
            test_coin_agreement_across_subsets;
          Alcotest.test_case "below threshold" `Quick test_coin_below_threshold;
          Alcotest.test_case "rejects forged share" `Quick test_coin_rejects_forged_share;
          Alcotest.test_case "wrong instance" `Quick test_coin_ignores_wrong_instance;
          Alcotest.test_case "leader in range" `Quick test_coin_leader_in_range;
          Alcotest.test_case "rough fairness" `Quick test_coin_fairness_rough;
          Alcotest.test_case "duplicate holders" `Quick
            test_coin_duplicate_holder_shares_dont_count ] );
      ( "auth",
        [ Alcotest.test_case "sign/verify" `Quick test_auth_sign_verify;
          Alcotest.test_case "cross-signer" `Quick test_auth_cross_signer_rejected;
          Alcotest.test_case "cert assembly" `Quick test_auth_cert_assembly;
          Alcotest.test_case "cert ignores bad sigs" `Quick
            test_auth_cert_ignores_bad_sigs ] )
    ]
