(* Tests for the three reliable-broadcast instantiations: the
   abstraction's Agreement / Integrity / Validity properties under
   random asynchronous schedules, plus Byzantine-sender attacks. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

type backend = B_bracha | B_avid | B_gossip

let backend_name = function
  | B_bracha -> "bracha"
  | B_avid -> "avid"
  | B_gossip -> "gossip"

(* A fleet of RBC endpoints over one network; returns per-process
   delivery logs and broadcast handles. *)
type fleet = {
  engine : Sim.Engine.t;
  deliveries : (string * int * int) list ref array; (* payload, round, source *)
  bcast : int -> payload:string -> round:int -> unit;
  counters : Metrics.Counters.t;
}

let make_fleet ?(seed = 9) ~backend ~n ~f () =
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let rng = Stdx.Rng.create seed in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
  let deliveries = Array.init n (fun _ -> ref []) in
  let deliver_to i ~payload ~round ~source =
    deliveries.(i) := (payload, round, source) :: !(deliveries.(i))
  in
  let bcast =
    match backend with
    | B_bracha ->
      let net = Net.Network.create ~engine ~sched ~counters ~n in
      let eps =
        Array.init n (fun me ->
            Rbc.Bracha.create ~net ~me ~f ~deliver:(deliver_to me))
      in
      fun i ~payload ~round -> Rbc.Bracha.bcast eps.(i) ~payload ~round
    | B_avid ->
      let net = Net.Network.create ~engine ~sched ~counters ~n in
      let eps =
        Array.init n (fun me ->
            Rbc.Avid.create ~net ~me ~f ~deliver:(deliver_to me))
      in
      fun i ~payload ~round -> Rbc.Avid.bcast eps.(i) ~payload ~round
    | B_gossip ->
      let net = Net.Network.create ~engine ~sched ~counters ~n in
      let eps =
        Array.init n (fun me ->
            Rbc.Gossip.create ~net ~rng:(Stdx.Rng.split rng) ~me ~f
              ~deliver:(deliver_to me) ())
      in
      fun i ~payload ~round -> Rbc.Gossip.bcast eps.(i) ~payload ~round
  in
  { engine; deliveries; bcast; counters }

let run fleet = ignore (Sim.Engine.run fleet.engine ())

(* -- generic properties, instantiated per backend -- *)

let test_validity backend () =
  let n = 7 and f = 2 in
  let fleet = make_fleet ~backend ~n ~f () in
  fleet.bcast 3 ~payload:"hello" ~round:1;
  run fleet;
  Array.iteri
    (fun i log ->
      checki
        (Printf.sprintf "%s: p%d delivered once" (backend_name backend) i)
        1 (List.length !log);
      let payload, round, source = List.hd !log in
      checks "payload" "hello" payload;
      checki "round" 1 round;
      checki "source" 3 source)
    fleet.deliveries

let test_all_senders backend () =
  let n = 4 and f = 1 in
  let fleet = make_fleet ~backend ~n ~f () in
  for i = 0 to n - 1 do
    fleet.bcast i ~payload:(Printf.sprintf "m%d" i) ~round:1
  done;
  run fleet;
  Array.iter
    (fun log ->
      checki "four instances delivered" 4 (List.length !log);
      let sources = List.sort compare (List.map (fun (_, _, s) -> s) !log) in
      Alcotest.(check (list int)) "one per source" [ 0; 1; 2; 3 ] sources)
    fleet.deliveries

let test_multiple_rounds backend () =
  let n = 4 and f = 1 in
  let fleet = make_fleet ~backend ~n ~f () in
  for r = 1 to 5 do
    fleet.bcast 0 ~payload:(Printf.sprintf "r%d" r) ~round:r
  done;
  run fleet;
  Array.iter
    (fun log ->
      checki "five rounds" 5 (List.length !log);
      List.iter
        (fun (payload, round, _) ->
          checks "round matches payload" (Printf.sprintf "r%d" round) payload)
        !log)
    fleet.deliveries

let test_agreement_on_logs backend () =
  (* same multiset of (payload, round, source) everywhere *)
  let n = 7 and f = 2 in
  let fleet = make_fleet ~seed:77 ~backend ~n ~f () in
  for i = 0 to n - 1 do
    for r = 1 to 3 do
      fleet.bcast i ~payload:(Printf.sprintf "p%d-r%d" i r) ~round:r
    done
  done;
  run fleet;
  let canon log = List.sort compare !log in
  let reference = canon fleet.deliveries.(0) in
  checki "reference complete" 21 (List.length reference);
  Array.iteri
    (fun i log ->
      Alcotest.(check (list (triple string int int)))
        (Printf.sprintf "p%d log" i)
        reference (canon log))
    fleet.deliveries

let test_empty_payload backend () =
  let n = 4 and f = 1 in
  let fleet = make_fleet ~backend ~n ~f () in
  fleet.bcast 2 ~payload:"" ~round:1;
  run fleet;
  Array.iter
    (fun log ->
      checki "delivered" 1 (List.length !log);
      let payload, _, _ = List.hd !log in
      checks "empty payload survives" "" payload)
    fleet.deliveries

let test_large_payload backend () =
  let n = 4 and f = 1 in
  let fleet = make_fleet ~backend ~n ~f () in
  let big = String.init 10_000 (fun i -> Char.chr (i mod 256)) in
  fleet.bcast 1 ~payload:big ~round:1;
  run fleet;
  Array.iter
    (fun log ->
      let payload, _, _ = List.hd !log in
      checkb "large payload intact" true (String.equal big payload))
    fleet.deliveries

(* -- Bracha-specific Byzantine tests -- *)

let make_bracha_raw ~n ~f ~seed =
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.create seed) in
  let net = Net.Network.create ~engine ~sched ~counters ~n in
  let deliveries = Array.init n (fun _ -> ref []) in
  let eps =
    Array.init n (fun me ->
        Rbc.Bracha.create ~net ~me ~f ~deliver:(fun ~payload ~round ~source ->
            deliveries.(me) := (payload, round, source) :: !(deliveries.(me))))
  in
  (engine, net, deliveries, eps)

let test_bracha_equivocation_no_split () =
  (* Byzantine p0 sends Init "A" to half the processes and Init "B" to
     the other half. Agreement: correct processes must not deliver
     different payloads (delivering nothing is allowed). *)
  let n = 4 and f = 1 in
  let engine, net, deliveries, _ = make_bracha_raw ~n ~f ~seed:5 in
  for dst = 0 to n - 1 do
    let payload = if dst < n / 2 then "A" else "B" in
    Net.Network.send net ~src:0 ~dst ~kind:"bracha-init" ~bits:128
      (Rbc.Bracha.Init { round = 1; payload })
  done;
  ignore (Sim.Engine.run engine ());
  let delivered =
    Array.to_list deliveries
    |> List.concat_map (fun log -> List.map (fun (p, _, _) -> p) !log)
    |> List.sort_uniq compare
  in
  checkb "at most one payload delivered" true (List.length delivered <= 1)

let test_bracha_equivocation_majority_converges () =
  (* 2f+1 processes get "A": A can gather an echo quorum, so if anything
     is delivered it is "A" everywhere *)
  let n = 4 and f = 1 in
  let engine, net, deliveries, _ = make_bracha_raw ~n ~f ~seed:6 in
  for dst = 0 to n - 1 do
    let payload = if dst < 3 then "A" else "B" in
    Net.Network.send net ~src:0 ~dst ~kind:"bracha-init" ~bits:128
      (Rbc.Bracha.Init { round = 1; payload })
  done;
  ignore (Sim.Engine.run engine ());
  Array.iteri
    (fun i log ->
      match !log with
      | [] -> Alcotest.fail (Printf.sprintf "p%d should deliver A" i)
      | [ (p, _, _) ] -> checks "A delivered" "A" p
      | _ -> Alcotest.fail "duplicate delivery")
    deliveries

let test_bracha_no_delivery_without_quorum () =
  (* READYs forged by the (single, f = 1) Byzantine process stay below
     the f+1 amplification threshold: no correct process echoes them and
     nothing is delivered. (With two forgers the fault bound would be
     violated and amplification would rightly fire.) *)
  let n = 4 and f = 1 in
  let engine, net, deliveries, _ = make_bracha_raw ~n ~f ~seed:7 in
  for dst = 1 to 3 do
    Net.Network.send net ~src:0 ~dst ~kind:"bracha-ready" ~bits:128
      (Rbc.Bracha.Ready { origin = 0; round = 1; payload = "forged" })
  done;
  ignore (Sim.Engine.run engine ());
  Array.iter (fun log -> checki "nothing delivered" 0 (List.length !log)) deliveries

let test_bracha_integrity_duplicate_init () =
  (* re-sending the same INIT must not cause duplicate delivery *)
  let n = 4 and f = 1 in
  let engine, net, deliveries, eps = make_bracha_raw ~n ~f ~seed:8 in
  Rbc.Bracha.bcast eps.(2) ~payload:"x" ~round:1;
  ignore (Sim.Engine.run engine ());
  (* replay the init *)
  Net.Network.broadcast net ~src:2 ~kind:"bracha-init" ~bits:128
    (Rbc.Bracha.Init { round = 1; payload = "x" });
  ignore (Sim.Engine.run engine ());
  Array.iter (fun log -> checki "exactly once" 1 (List.length !log)) deliveries

let test_bracha_silent_faults_tolerated () =
  (* f silent processes: the rest still deliver *)
  let n = 7 and f = 2 in
  let engine, net, deliveries, eps = make_bracha_raw ~n ~f ~seed:9 in
  Net.Network.register net 5 (fun ~src:_ _ -> ());
  Net.Network.register net 6 (fun ~src:_ _ -> ());
  Rbc.Bracha.bcast eps.(0) ~payload:"live" ~round:1;
  ignore (Sim.Engine.run engine ());
  for i = 0 to 4 do
    checki (Printf.sprintf "p%d delivers" i) 1 (List.length !(deliveries.(i)))
  done

let test_bracha_fplus1_faults_stall () =
  (* with f+1 silent processes the quorum is unreachable: nothing can be
     delivered (the resilience bound is tight) *)
  let n = 7 and f = 2 in
  let engine, net, deliveries, eps = make_bracha_raw ~n ~f ~seed:10 in
  List.iter (fun i -> Net.Network.register net i (fun ~src:_ _ -> ())) [ 4; 5; 6 ];
  Rbc.Bracha.bcast eps.(0) ~payload:"stuck" ~round:1;
  ignore (Sim.Engine.run engine ());
  Array.iter (fun log -> checki "no delivery" 0 (List.length !log)) deliveries

(* -- AVID-specific tests -- *)

let test_avid_inconsistent_dispersal_discarded () =
  let n = 4 and f = 1 in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.create 11) in
  let net = Net.Network.create ~engine ~sched ~counters ~n in
  let deliveries = Array.init n (fun _ -> ref []) in
  let eps =
    Array.init n (fun me ->
        Rbc.Avid.create ~net ~me ~f ~deliver:(fun ~payload ~round ~source ->
            deliveries.(me) := (payload, round, source) :: !(deliveries.(me))))
  in
  Rbc.Avid.bcast_inconsistent eps.(0) ~payload:"evil payload" ~round:1;
  ignore (Sim.Engine.run engine ());
  Array.iter
    (fun log -> checki "non-codeword discarded everywhere" 0 (List.length !log))
    deliveries;
  (* and an honest dispersal on the same instance space still works *)
  Rbc.Avid.bcast eps.(1) ~payload:"good" ~round:1;
  ignore (Sim.Engine.run engine ());
  Array.iter
    (fun log ->
      checki "honest instance unaffected" 1 (List.length !log);
      let p, _, s = List.hd !log in
      checks "payload" "good" p;
      checki "source" 1 s)
    deliveries

let test_avid_fragment_size_economy () =
  (* AVID's total traffic for a large payload must be far below
     Bracha's (each process relays |m|/(f+1) + proofs instead of |m|) *)
  let n = 10 and f = 3 in
  let payload = String.make 100_000 'z' in
  let bracha = make_fleet ~backend:B_bracha ~n ~f () in
  bracha.bcast 0 ~payload ~round:1;
  run bracha;
  let avid = make_fleet ~backend:B_avid ~n ~f () in
  avid.bcast 0 ~payload ~round:1;
  run avid;
  let bracha_bits = Metrics.Counters.total_bits bracha.counters in
  let avid_bits = Metrics.Counters.total_bits avid.counters in
  checkb
    (Printf.sprintf "avid (%d) < bracha (%d) / 2" avid_bits bracha_bits)
    true
    (avid_bits * 2 < bracha_bits)

(* -- gossip-specific tests -- *)

let test_gossip_subquadratic_messages () =
  (* per-broadcast message count must scale well below n^2 for large n
     (the O(n log n) constant only separates from n^2 once n is big) *)
  let n = 100 and f = 33 in
  let fleet = make_fleet ~backend:B_gossip ~n ~f () in
  fleet.bcast 0 ~payload:"m" ~round:1;
  run fleet;
  let msgs = Metrics.Counters.total_messages fleet.counters in
  checkb (Printf.sprintf "messages (%d) < n^2 (%d)" msgs (n * n)) true
    (msgs < n * n);
  (* and well below Bracha's 2n^2 + n payload-bearing messages *)
  checkb "less than half of bracha's count" true (2 * msgs < (2 * n * n) + n);
  (* and it still delivered everywhere (whp property, fixed seed) *)
  Array.iter (fun log -> checki "delivered" 1 (List.length !log)) fleet.deliveries

let test_gossip_eventual_delivery_many_seeds () =
  (* the epsilon-failure is bounded: across seeds, deliveries happen at
     every process with these parameters — a regression canary for the
     sample-size tuning *)
  List.iter
    (fun seed ->
      let n = 16 and f = 5 in
      let fleet = make_fleet ~seed ~backend:B_gossip ~n ~f () in
      fleet.bcast (seed mod n) ~payload:"g" ~round:1;
      run fleet;
      let delivered =
        Array.fold_left (fun acc log -> acc + List.length !log) 0 fleet.deliveries
      in
      checki (Printf.sprintf "seed %d: all delivered" seed) n delivered)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* -- wire codec property tests -- *)

let gen_payload = QCheck.Gen.string_size (QCheck.Gen.int_range 0 200)

let gen_bracha_msg =
  QCheck.Gen.(
    let* tag = int_range 0 2 in
    let* origin = int_range 0 50 in
    let* round = int_range 0 10_000 in
    let* payload = gen_payload in
    return
      (match tag with
      | 0 -> Rbc.Bracha.Init { round; payload }
      | 1 -> Rbc.Bracha.Echo { origin; round; payload }
      | _ -> Rbc.Bracha.Ready { origin; round; payload }))

let prop_bracha_codec =
  QCheck.Test.make ~name:"bracha wire codec roundtrip" ~count:300
    (QCheck.make gen_bracha_msg) (fun msg ->
      Rbc.Bracha.decode_msg (Rbc.Bracha.encode_msg msg) = Some msg)

let gen_digest = QCheck.Gen.map Crypto.Sha256.digest_string gen_payload

let gen_gossip_msg =
  QCheck.Gen.(
    let* tag = int_range 0 2 in
    let* origin = int_range 0 50 in
    let* round = int_range 0 10_000 in
    let* payload = gen_payload in
    let* digest = gen_digest in
    return
      (match tag with
      | 0 -> Rbc.Gossip.Gossip { origin; round; payload }
      | 1 -> Rbc.Gossip.Echo { origin; round; digest }
      | _ -> Rbc.Gossip.Ready { origin; round; digest }))

let prop_gossip_codec =
  QCheck.Test.make ~name:"gossip wire codec roundtrip" ~count:300
    (QCheck.make gen_gossip_msg) (fun msg ->
      Rbc.Gossip.decode_msg (Rbc.Gossip.encode_msg msg) = Some msg)

let gen_avid_msg =
  QCheck.Gen.(
    let* tag = int_range 0 2 in
    let* origin = int_range 0 50 in
    let* round = int_range 0 10_000 in
    let* data_len = int_range 0 100_000 in
    let* frag_index = int_range 0 50 in
    let* frag = gen_payload in
    let* root = gen_digest in
    let* path_len = int_range 0 6 in
    let* path_seed = int_range 0 1_000_000 in
    let path =
      List.init path_len (fun i ->
          Crypto.Sha256.digest_string (Printf.sprintf "%d-%d" path_seed i))
    in
    let proof = { Crypto.Merkle.leaf_index = frag_index; path } in
    return
      (match tag with
      | 0 -> Rbc.Avid.Disperse { round; root; data_len; frag_index; frag; proof }
      | 1 -> Rbc.Avid.Echo { origin; round; root; data_len; frag_index; frag; proof }
      | _ -> Rbc.Avid.Ready { origin; round; root; data_len }))

let prop_avid_codec =
  QCheck.Test.make ~name:"avid wire codec roundtrip" ~count:300
    (QCheck.make gen_avid_msg) (fun msg ->
      Rbc.Avid.decode_msg (Rbc.Avid.encode_msg msg) = Some msg)

let test_codecs_reject_garbage () =
  List.iter
    (fun s ->
      checkb "bracha rejects" true (Rbc.Bracha.decode_msg s = None);
      checkb "avid rejects" true (Rbc.Avid.decode_msg s = None);
      checkb "gossip rejects" true (Rbc.Gossip.decode_msg s = None))
    [ ""; "\x00"; "\x09zzz"; String.make 3 '\x01'; "\x01\x00\x00\x00" ]

let test_codec_truncation_rejected () =
  let msg = Rbc.Bracha.Init { round = 7; payload = "hello world" } in
  let enc = Rbc.Bracha.encode_msg msg in
  for cut = 0 to String.length enc - 1 do
    checkb
      (Printf.sprintf "prefix of length %d rejected" cut)
      true
      (Rbc.Bracha.decode_msg (String.sub enc 0 cut) = None)
  done;
  checkb "trailing byte rejected" true (Rbc.Bracha.decode_msg (enc ^ "x") = None)

let backend_suite backend =
  let name = backend_name backend in
  [ Alcotest.test_case (name ^ ": validity") `Quick (test_validity backend);
    Alcotest.test_case (name ^ ": all senders") `Quick (test_all_senders backend);
    Alcotest.test_case (name ^ ": multiple rounds") `Quick
      (test_multiple_rounds backend);
    Alcotest.test_case (name ^ ": agreement") `Quick (test_agreement_on_logs backend);
    Alcotest.test_case (name ^ ": empty payload") `Quick (test_empty_payload backend);
    Alcotest.test_case (name ^ ": large payload") `Quick (test_large_payload backend)
  ]

let () =
  Alcotest.run "rbc"
    [ ("bracha-generic", backend_suite B_bracha);
      ("avid-generic", backend_suite B_avid);
      ("gossip-generic", backend_suite B_gossip);
      ( "bracha-byzantine",
        [ Alcotest.test_case "equivocation no split" `Quick
            test_bracha_equivocation_no_split;
          Alcotest.test_case "equivocation majority" `Quick
            test_bracha_equivocation_majority_converges;
          Alcotest.test_case "no delivery without quorum" `Quick
            test_bracha_no_delivery_without_quorum;
          Alcotest.test_case "integrity duplicate init" `Quick
            test_bracha_integrity_duplicate_init;
          Alcotest.test_case "f silent tolerated" `Quick
            test_bracha_silent_faults_tolerated;
          Alcotest.test_case "f+1 silent stalls" `Quick test_bracha_fplus1_faults_stall
        ] );
      ( "avid",
        [ Alcotest.test_case "inconsistent dispersal discarded" `Quick
            test_avid_inconsistent_dispersal_discarded;
          Alcotest.test_case "fragment economy" `Quick test_avid_fragment_size_economy ] );
      ( "gossip",
        [ Alcotest.test_case "subquadratic messages" `Quick
            test_gossip_subquadratic_messages;
          Alcotest.test_case "eventual delivery across seeds" `Quick
            test_gossip_eventual_delivery_many_seeds ] );
      ( "wire-codecs",
        [ QCheck_alcotest.to_alcotest prop_bracha_codec;
          QCheck_alcotest.to_alcotest prop_gossip_codec;
          QCheck_alcotest.to_alcotest prop_avid_codec;
          Alcotest.test_case "garbage rejected" `Quick test_codecs_reject_garbage;
          Alcotest.test_case "truncation rejected" `Quick
            test_codec_truncation_rejected ] )
    ]
