(* Tests for the binary Byzantine agreement substrate and the
   Aleph-style related-work baseline (paper §7). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- ABBA ---- *)

let run_abba ?(seed = 6) ?(n = 4) ?(mute = []) ~inputs () =
  let f = (n - 1) / 3 in
  let rng = Stdx.Rng.create seed in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
  let net = Net.Network.create ~engine ~sched ~counters ~n in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
  let decisions = Array.make n None in
  let instances =
    Array.init n (fun me ->
        Baselines.Abba.create ~net ~coin ~me ~f ~tag:1
          ~decide:(fun v -> decisions.(me) <- Some v)
          ())
  in
  Array.iteri
    (fun i inst ->
      if List.mem i mute then Net.Network.register net i (fun ~src:_ _ -> ())
      else Baselines.Abba.propose inst (List.nth inputs i))
    instances;
  ignore (Sim.Engine.run engine ~until:500.0 ());
  (decisions, instances, engine)

let test_abba_validity_all_true () =
  let decisions, _, _ = run_abba ~inputs:[ true; true; true; true ] () in
  Array.iteri
    (fun i d -> checkb (Printf.sprintf "p%d decided true" i) true (d = Some true))
    decisions

let test_abba_validity_all_false () =
  let decisions, _, _ = run_abba ~inputs:[ false; false; false; false ] () in
  Array.iter (fun d -> checkb "false" true (d = Some false)) decisions

let test_abba_agreement_mixed_inputs () =
  List.iter
    (fun seed ->
      let decisions, _, _ =
        run_abba ~seed ~inputs:[ true; false; true; false ] ()
      in
      let values =
        Array.to_list decisions |> List.filter_map Fun.id
        |> List.sort_uniq compare
      in
      checki (Printf.sprintf "seed %d: everyone decided" seed) 4
        (Array.length (Array.of_seq (Seq.filter Option.is_some (Array.to_seq decisions))));
      checki (Printf.sprintf "seed %d: one value" seed) 1 (List.length values))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_abba_decided_value_was_proposed () =
  (* with inputs 3x true / 1x false, false can only win via bin_values,
     which requires a correct proposer — both outcomes are inputs of
     correct processes, never an invented value; and with ALL-true it
     must be true (checked above). Here: 1 true, 3 false. *)
  List.iter
    (fun seed ->
      let decisions, _, _ =
        run_abba ~seed ~inputs:[ true; false; false; false ] ()
      in
      let v = Option.get decisions.(0) in
      Array.iter (fun d -> checkb "agreement" true (d = Some v)) decisions)
    [ 11; 12; 13 ]

let test_abba_with_silent_f () =
  let n = 7 in
  let decisions, _, _ =
    run_abba ~seed:14 ~n
      ~inputs:[ true; true; false; true; false; true; true ]
      ~mute:[ 5; 6 ] ()
  in
  let live = [ 0; 1; 2; 3; 4 ] in
  List.iter
    (fun i ->
      checkb (Printf.sprintf "p%d decided" i) true (decisions.(i) <> None))
    live;
  let values =
    List.filter_map (fun i -> decisions.(i)) live |> List.sort_uniq compare
  in
  checki "agreement among live" 1 (List.length values)

let test_abba_quiescent_after_decide () =
  let decisions, _, engine = run_abba ~seed:15 ~inputs:[ true; true; true; true ] () in
  Array.iter (fun d -> checkb "decided" true (d <> None)) decisions;
  (* the event queue drained on its own: the halting layer worked *)
  checki "no pending events" 0 (Sim.Engine.pending engine)

let test_abba_few_rounds () =
  let _, instances, _ = run_abba ~seed:16 ~inputs:[ true; true; false; false ] () in
  Array.iter
    (fun inst ->
      let r = Baselines.Abba.rounds_used inst in
      checkb (Printf.sprintf "expected O(1) rounds, used %d" r) true (r <= 8))
    instances

let test_abba_double_propose_rejected () =
  let rng = Stdx.Rng.create 17 in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.synchronous () in
  let net = Net.Network.create ~engine ~sched ~counters ~n:4 in
  let coin = Crypto.Threshold_coin.setup ~rng ~n:4 ~f:1 in
  let inst =
    Baselines.Abba.create ~net ~coin ~me:0 ~f:1 ~tag:1 ~decide:(fun _ -> ()) ()
  in
  Baselines.Abba.propose inst true;
  Alcotest.check_raises "second propose"
    (Invalid_argument "Abba.propose: already proposed") (fun () ->
      Baselines.Abba.propose inst false)

let test_abba_messages_tiny () =
  (* binary agreement messages are a handful of bytes: the n^2-messages
     cost dominates, as the complexity accounting assumes *)
  let rng = Stdx.Rng.create 18 in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
  let net = Net.Network.create ~engine ~sched ~counters ~n:4 in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n:4 ~f:1 in
  let instances =
    Array.init 4 (fun me ->
        Baselines.Abba.create ~net ~coin ~me ~f:1 ~tag:1 ~decide:(fun _ -> ()) ())
  in
  Array.iteri (fun i inst -> Baselines.Abba.propose inst (i mod 2 = 0)) instances;
  ignore (Sim.Engine.run engine ~until:200.0 ());
  let msgs = Metrics.Counters.total_messages counters in
  let bits = Metrics.Counters.total_bits counters in
  checkb "completed" true (msgs > 0);
  (* average message under 8 bytes *)
  checkb
    (Printf.sprintf "avg message %.1f bytes" (float_of_int bits /. 8.0 /. float_of_int msgs))
    true
    (bits / max 1 msgs <= 64)

(* ---- Aleph ---- *)

let make_aleph ?(seed = 30) ?(n = 4) ?(sched_wrap = fun s -> s) () =
  let f = (n - 1) / 3 in
  let rng = Stdx.Rng.create seed in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = sched_wrap (Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng)) in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
  ( Baselines.Aleph.create ~engine ~counters ~sched ~coin ~n ~f
      ~block:(fun ~round ~me -> Printf.sprintf "a%d.%d" round me),
    counters )

let test_aleph_total_order_and_progress () =
  let aleph, _ = make_aleph () in
  Baselines.Aleph.run aleph ~until:120.0;
  (match Baselines.Aleph.check_total_order aleph with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  for i = 0 to 3 do
    checkb
      (Printf.sprintf "p%d ordered rounds (%d)" i (Baselines.Aleph.ordered_rounds aleph i))
      true
      (Baselines.Aleph.ordered_rounds aleph i >= 3);
    checkb "log non-empty" true (Baselines.Aleph.delivered_log aleph i <> [])
  done

let test_aleph_logs_substantial () =
  let aleph, _ = make_aleph ~seed:31 () in
  Baselines.Aleph.run aleph ~until:150.0;
  let log = Baselines.Aleph.delivered_log aleph 0 in
  checkb (Printf.sprintf "many vertices (%d)" (List.length log)) true
    (List.length log > 12);
  (* no duplicates *)
  let refs = List.map Dagrider.Vertex.vref_of log in
  checki "no duplicates" (List.length refs)
    (List.length (List.sort_uniq compare refs))

let test_aleph_no_validity_for_slow_process () =
  (* the §7 contrast: a heavily delayed process's vertices are voted out
     and — without weak edges — never ordered; DAG-Rider under the same
     schedule orders them *)
  let sched_wrap inner =
    Net.Sched.delay_process ~inner ~victim:3 ~factor:25.0
  in
  let aleph, _ = make_aleph ~seed:32 ~sched_wrap () in
  Baselines.Aleph.run aleph ~until:150.0;
  (match Baselines.Aleph.check_total_order aleph with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let log = Baselines.Aleph.delivered_log aleph 0 in
  let victim_count =
    List.length (List.filter (fun v -> v.Dagrider.Vertex.source = 3) log)
  in
  checkb (Printf.sprintf "log substantial (%d)" (List.length log)) true
    (List.length log > 10);
  checki "victim never ordered (no weak edges)" 0 victim_count;
  (* DAG-Rider, same adversary: victim ordered *)
  let opts =
    { (Harness.Runner.default_options ~n:4) with
      seed = 32;
      schedule =
        Harness.Runner.Custom
          (fun rng ->
            Net.Sched.delay_process
              ~inner:(Net.Sched.uniform_random ~rng)
              ~victim:3 ~factor:25.0) }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:150.0;
  let dr_victim =
    List.length
      (List.filter
         (fun v -> v.Dagrider.Vertex.source = 3)
         (Dagrider.Node.delivered_log (Harness.Runner.node h 0)))
  in
  checkb (Printf.sprintf "DAG-Rider orders the victim (%d)" dr_victim) true
    (dr_victim > 0)

let test_aleph_abba_cost_scales () =
  (* n binary agreements per round: the §7 cost shape *)
  let aleph, _ = make_aleph ~seed:33 () in
  Baselines.Aleph.run aleph ~until:60.0;
  let rounds = Baselines.Aleph.ordered_rounds aleph 0 in
  let instances = Baselines.Aleph.abba_instances_run aleph in
  (* instances counts endpoints: n procs x n slots x >= rounds voted *)
  checkb
    (Printf.sprintf "instances (%d) >= 16 * ordered rounds (%d)" instances rounds)
    true
    (instances >= 16 * rounds)

let () =
  Alcotest.run "abba-aleph"
    [ ( "abba",
        [ Alcotest.test_case "validity all true" `Quick test_abba_validity_all_true;
          Alcotest.test_case "validity all false" `Quick test_abba_validity_all_false;
          Alcotest.test_case "agreement mixed" `Quick test_abba_agreement_mixed_inputs;
          Alcotest.test_case "value was proposed" `Quick
            test_abba_decided_value_was_proposed;
          Alcotest.test_case "silent f" `Quick test_abba_with_silent_f;
          Alcotest.test_case "quiescence" `Quick test_abba_quiescent_after_decide;
          Alcotest.test_case "few rounds" `Quick test_abba_few_rounds;
          Alcotest.test_case "double propose" `Quick test_abba_double_propose_rejected;
          Alcotest.test_case "tiny messages" `Quick test_abba_messages_tiny ] );
      ( "aleph",
        [ Alcotest.test_case "total order + progress" `Quick
            test_aleph_total_order_and_progress;
          Alcotest.test_case "substantial logs" `Quick test_aleph_logs_substantial;
          Alcotest.test_case "no validity vs DAG-Rider" `Quick
            test_aleph_no_validity_for_slow_process;
          Alcotest.test_case "abba cost scales" `Quick test_aleph_abba_cost_scales ] )
    ]
