lib/rbc/gossip.ml: Buffer Crypto Hashtbl Iset List Net Rbc_intf Stdx String Tbl Wire
