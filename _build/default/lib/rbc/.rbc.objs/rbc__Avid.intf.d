lib/rbc/avid.mli: Crypto Net Rbc_intf
