lib/rbc/gossip.mli: Net Rbc_intf Stdx
