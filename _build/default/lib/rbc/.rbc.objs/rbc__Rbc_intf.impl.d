lib/rbc/rbc_intf.ml: Buffer Char Hashtbl Int Set String
