lib/rbc/avid.ml: Array Buffer Char Crypto Hashtbl Iset List Net Rbc_intf String Tbl Wire
