lib/rbc/bracha.ml: Buffer Crypto Hashtbl Iset Net Rbc_intf Tbl Wire
