lib/rbc/bracha.mli: Net Rbc_intf
