(** Shared vocabulary of the reliable-broadcast abstraction (paper §2).

    Each sender [p_k] calls [r_bcast_k (m, r)]; every process eventually
    outputs [r_deliver_i (m, r, p_k)] with the abstraction's Agreement /
    Integrity / Validity guarantees. Implementations are message-type
    specific, but all expose the same [create]/[bcast] shape so the DAG
    layer can be instantiated with any of them (Table 1 rows). *)

type deliver = payload:string -> round:int -> source:int -> unit
(** Upcall invoked exactly once per (source, round) instance. *)

(** Wire-size accounting shared by the implementations: every message is
    charged a fixed header (tags, identifiers, round numbers) plus its
    variable-size payload in bits. *)

let header_bits = 128

let payload_bits s = 8 * String.length s

let digest_bits = 256

(** Instance keys: a reliable broadcast instance is identified by the
    originating process and its round number. *)

module Key = struct
  type t = int * int (* origin, round *)

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

(** Sets of process ids, used for quorum counting. *)
module Iset = Set.Make (Int)

(** Binary wire-format helpers shared by the protocol codecs. Every
    protocol message has an [encode_msg]/[decode_msg] pair; senders
    charge the exact encoded size, and the codecs carry property tests
    in the suite. *)
module Wire = struct
  let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

  let put_u32 buf v =
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))

  let put_bytes buf s =
    put_u32 buf (String.length s);
    Buffer.add_string buf s

  let put_bool buf b = put_u8 buf (if b then 1 else 0)

  type reader = { src : string; mutable pos : int }

  exception Bad

  let reader src = { src; pos = 0 }

  let get_u8 r =
    if r.pos >= String.length r.src then raise Bad;
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let get_u32 r =
    if r.pos + 4 > String.length r.src then raise Bad;
    let b i = Char.code r.src.[r.pos + i] in
    let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    r.pos <- r.pos + 4;
    v

  let get_bytes r =
    let len = get_u32 r in
    if r.pos + len > String.length r.src then raise Bad;
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    s

  let get_bool r = get_u8 r <> 0

  let finish r v = if r.pos = String.length r.src then Some v else None

  let decode src f = try f (reader src) with Bad -> None

  let bits s = 8 * String.length s
end
