(** Arithmetic in GF(2^8) with the AES reduction polynomial
    [x^8 + x^4 + x^3 + x + 1] (0x11b), via log/antilog tables over the
    generator 0x03.

    This is the field underneath the Reed–Solomon erasure code used by
    the AVID broadcast instantiation (Cachin–Tessaro). Elements are
    represented as [int] in [\[0, 255\]]; operations outside that range
    raise [Invalid_argument]. *)

val add : int -> int -> int
(** Addition = XOR (characteristic 2). *)

val sub : int -> int -> int
(** Same as {!add} in characteristic 2. *)

val mul : int -> int -> int

val div : int -> int -> int
(** @raise Division_by_zero if the divisor is 0. *)

val inv : int -> int
(** Multiplicative inverse. @raise Division_by_zero on 0. *)

val pow : int -> int -> int
(** [pow x k] for [k >= 0]. [pow 0 0 = 1] by convention. *)

val eval_poly : int array -> int -> int
(** [eval_poly coeffs x] evaluates the polynomial
    [coeffs.(0) + coeffs.(1)*x + ...] by Horner's rule. *)
