type t = {
  n : int;
  f : int;
  keys : int array; (* keys.(i) = P(i + 1); dealer state, see .mli note *)
}

type share = { holder : int; instance : int; value : int }

let setup ~rng ~n ~f =
  if f < 0 || n < f + 1 then
    invalid_arg "Threshold_coin.setup: need 0 <= f and n >= f + 1";
  let coeffs = Array.init (f + 1) (fun _ -> Stdx.Rng.int rng Field.p) in
  { n; f; keys = Array.init n (fun i -> Field.eval_poly coeffs (i + 1)) }

let of_keys ~n ~f ~keys =
  if Array.length keys <> n then
    invalid_arg "Threshold_coin.of_keys: need one key per process";
  if f < 0 || n < f + 1 then
    invalid_arg "Threshold_coin.of_keys: need 0 <= f and n >= f + 1";
  { n; f; keys = Array.map Field.of_int keys }

let key_of t ~holder =
  if holder < 0 || holder >= t.n then
    invalid_arg "Threshold_coin.key_of: bad holder";
  t.keys.(holder)

let n t = t.n
let threshold t = t.f + 1

let hash_instance instance =
  Field.element_of_digest
    (Sha256.digest_string (Printf.sprintf "coin-instance:%d" instance))

let make_share t ~holder ~instance =
  if holder < 0 || holder >= t.n then
    invalid_arg "Threshold_coin.make_share: bad holder";
  { holder; instance; value = Field.mul t.keys.(holder) (hash_instance instance) }

let verify_share t share =
  share.holder >= 0 && share.holder < t.n
  && share.value = Field.mul t.keys.(share.holder) (hash_instance share.instance)

let combine t ~instance shares =
  let valid =
    List.filter
      (fun s -> s.instance = instance && verify_share t s)
      shares
  in
  let dedup = List.sort_uniq (fun a b -> compare a.holder b.holder) valid in
  if List.length dedup < t.f + 1 then None
  else begin
    let chosen = List.filteri (fun i _ -> i <= t.f) dedup in
    let points = List.map (fun s -> (s.holder + 1, s.value)) chosen in
    let secret_value = Field.lagrange_at_zero points in
    let digest =
      Sha256.digest_string (Printf.sprintf "coin-out:%d:%d" secret_value instance)
    in
    Some (Field.element_of_digest digest mod t.n)
  end

let share_size_bits = 96 (* holder id + instance + 31-bit field element *)
