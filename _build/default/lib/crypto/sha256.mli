(** SHA-256 (FIPS 180-4), implemented from scratch on [int32] words.

    Used for vertex digests, Merkle trees, and hashing threshold-coin
    outputs to leader indices. The implementation is the straightforward
    64-round compression function; throughput is adequate for simulation
    workloads (megabytes per second), and correctness is checked against
    the official test vectors in the test suite. *)

type digest = string
(** 32-byte raw digest. *)

val digest_string : string -> digest
(** Hash a byte string. *)

val digest_bytes : bytes -> digest

val to_hex : digest -> string
(** Lowercase hexadecimal rendering (64 chars). *)

val hmac : key:string -> string -> digest
(** HMAC-SHA256 (FIPS 198-1); used by the modeled signature scheme in
    {!Auth} and by the threshold-coin PRF. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> digest
(** [finalize] consumes the context; feeding it afterwards raises. *)
