(** Global perfect coin via (f+1)-of-n threshold secret sharing (paper
    §2, after Cachin–Kursawe–Shoup).

    Setup: a trusted dealer samples a master polynomial [P] of degree [f]
    over Z_(2^31-1); process [i]'s key is [P(i + 1)]. The share of coin
    instance [w] from process [i] is [P(i + 1) * H(w)], where [H] hashes
    the instance number to a field element. Because [x -> P(x) * H(w)] is
    again a degree-[f] polynomial with constant term [P(0) * H(w)], any
    [f + 1] valid shares Lagrange-interpolate to the same group element,
    which is hashed to a process index in [\[0, n)].

    Guarantees, matching the paper's abstraction:
    - {b Agreement}: interpolation is deterministic in the share set's
      defining polynomial, so all combiners obtain the same leader.
    - {b Termination}: any [f + 1] shares suffice.
    - {b Unpredictability}: with [<= f] shares the secret is
      information-theoretically undetermined. (The adversary in our
      simulation is code we write; it never queries the dealer oracle.)
    - {b Fairness}: the leader is a hash of [P(0) * H(w)], uniform over
      the [n] processes up to negligible hash bias.

    Substitution note (DESIGN.md §2): share {e verification} is modeled —
    [verify_share] recomputes the expected share from dealer state rather
    than checking a pairing equation. This changes no protocol-visible
    behaviour: forged shares are rejected either way. *)

type t
(** Public coin context (held by every process in the simulation). *)

type share = { holder : int; instance : int; value : int }

val setup : rng:Stdx.Rng.t -> n:int -> f:int -> t
(** Trusted-dealer setup for [n] processes tolerating [f] faults; the
    combining threshold is [f + 1].
    @raise Invalid_argument unless [0 <= f] and [n >= f + 1]. *)

val of_keys : n:int -> f:int -> keys:int array -> t
(** Assemble a coin context from per-process keys produced by a
    distributed key generation ({!Adkg}) instead of a trusted dealer.
    [keys.(i)] must be the evaluation at [i + 1] of one degree-[f]
    polynomial (the ADKG guarantees this); the caller is the simulation
    harness playing the PKI oracle (DESIGN.md §2).
    @raise Invalid_argument on a size mismatch. *)

val key_of : t -> holder:int -> int
(** The holder's secret key (used by {!Adkg} tests to cross-check the
    aggregated sharing; a real deployment never exposes this). *)

val n : t -> int
val threshold : t -> int
(** [f + 1]. *)

val make_share : t -> holder:int -> instance:int -> share
(** The share process [holder] (0-indexed) broadcasts for instance
    [instance]. *)

val verify_share : t -> share -> bool
(** Reject shares a Byzantine process forged or mutated. *)

val combine : t -> instance:int -> share list -> int option
(** [combine t ~instance shares] returns [Some leader] (a process index
    in [\[0, n)]) once the list contains at least [f + 1] valid shares
    for [instance] from distinct holders, [None] otherwise. Invalid or
    duplicate shares are ignored rather than raising, since they come
    from the network. *)

val share_size_bits : int
(** Wire size charged per share by the communication accounting. *)
