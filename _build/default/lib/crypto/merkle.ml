type tree = {
  levels : string array array;
      (* levels.(0) = leaf digests; last level has length 1 = root *)
}

type proof = { leaf_index : int; path : string list }

let hash_leaf payload = Sha256.digest_string ("\x00" ^ payload)
let hash_node l r = Sha256.digest_string ("\x01" ^ l ^ r)

let next_level nodes =
  let n = Array.length nodes in
  let m = (n + 1) / 2 in
  Array.init m (fun i ->
      let l = nodes.(2 * i) in
      let r = if (2 * i) + 1 < n then nodes.((2 * i) + 1) else l in
      hash_node l r)

let build leaves =
  if Array.length leaves = 0 then invalid_arg "Merkle.build: no leaves";
  let rec go acc nodes =
    if Array.length nodes = 1 then List.rev (nodes :: acc)
    else go (nodes :: acc) (next_level nodes)
  in
  let levels = go [] (Array.map hash_leaf leaves) in
  { levels = Array.of_list levels }

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let leaf_count t = Array.length t.levels.(0)

let prove t index =
  let n = leaf_count t in
  if index < 0 || index >= n then invalid_arg "Merkle.prove: index out of range";
  let rec go level i acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let sib = if i land 1 = 0 then i + 1 else i - 1 in
      let sib_digest =
        if sib < Array.length nodes then nodes.(sib) else nodes.(i)
      in
      go (level + 1) (i / 2) (sib_digest :: acc)
    end
  in
  { leaf_index = index; path = go 0 index [] }

let verify ~root:expected ~leaf_count ~leaf proof =
  if proof.leaf_index < 0 || proof.leaf_index >= leaf_count then false
  else begin
    (* expected path length = tree height *)
    let height =
      let rec go n acc = if n <= 1 then acc else go ((n + 1) / 2) (acc + 1) in
      go leaf_count 0
    in
    if List.length proof.path <> height then false
    else begin
      let digest = ref (hash_leaf leaf) in
      let i = ref proof.leaf_index in
      List.iter
        (fun sib ->
          digest :=
            if !i land 1 = 0 then hash_node !digest sib
            else hash_node sib !digest;
          i := !i / 2)
        proof.path;
      String.equal !digest expected
    end
  end
