(** Modeled digital signatures and quorum certificates for the baseline
    protocols (VABA, Dumbo).

    DAG-Rider itself needs no signatures for safety (that is the point of
    Table 1's post-quantum column); the baselines do. Since the sealed
    container has no asymmetric-crypto package, signatures are modeled as
    HMAC-SHA256 under per-process keys issued by a setup authority, with
    verification recomputing the MAC — unforgeable within the simulation
    because Byzantine harness code never reads other processes' keys.
    Wire sizes are charged as 512 bits per signature and 512 bits per
    threshold signature, matching BLS-ish deployments, so communication
    complexity measurements keep the right shape. *)

type t
(** The signature authority (simulation-global). *)

type signature = { signer : int; tag : string }

val setup : rng:Stdx.Rng.t -> n:int -> t

val sign : t -> signer:int -> string -> signature
(** @raise Invalid_argument on a bad signer index. *)

val verify : t -> msg:string -> signature -> bool

type quorum_cert = { message : string; signers : int list }
(** A certificate that [threshold] distinct processes signed [message]. *)

val make_cert :
  t -> threshold:int -> msg:string -> signature list -> quorum_cert option
(** Assemble a certificate from at least [threshold] valid signatures by
    distinct signers on [msg]; [None] if not enough. *)

val verify_cert : t -> threshold:int -> quorum_cert -> bool

val signature_size_bits : int
val cert_size_bits : int
(** Certificates are charged at constant size (threshold-signature
    model), per the complexity accounting in VABA/Dumbo papers. *)
