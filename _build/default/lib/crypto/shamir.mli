(** Shamir secret sharing over Z_(2^31-1) (Shamir 1979).

    A secret [s] is embedded as the constant term of a uniformly random
    polynomial of degree [threshold - 1]; the share of party [i]
    (1-indexed) is the evaluation at [x = i]. Any [threshold] shares
    reconstruct [s] by Lagrange interpolation at 0; fewer reveal nothing
    information-theoretically. The threshold coin combines [f + 1] shares
    this way, which is what gives DAG-Rider's coin its
    information-theoretic agreement guarantee (paper §2). *)

type share = { x : int; y : int }
(** [x] is the party index (>= 1), [y] the polynomial evaluation. *)

val deal :
  rng:Stdx.Rng.t -> secret:int -> threshold:int -> shares:int -> share list
(** [deal ~rng ~secret ~threshold ~shares] produces [shares] shares of
    which any [threshold] reconstruct [secret].
    @raise Invalid_argument unless [1 <= threshold <= shares]. *)

val reconstruct : threshold:int -> share list -> int
(** Reconstruct the secret from at least [threshold] shares with distinct
    indices. Extra shares are ignored (the first [threshold] in index
    order are used).
    @raise Invalid_argument if fewer than [threshold] distinct shares. *)
