(* Log/antilog tables over generator 0x03 with the AES polynomial 0x11b.
   exp_table has 512 entries so that mul can skip one modular reduction. *)

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    (* multiply by the generator 3 = x + 1: x*3 = (x << 1) xor x *)
    let shifted = !x lsl 1 in
    let shifted = if shifted land 0x100 <> 0 then shifted lxor 0x11b else shifted in
    x := shifted lxor !x
  done;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let check a =
  if a < 0 || a > 255 then invalid_arg "Gf256: element out of range"

let add a b = check a; check b; a lxor b
let sub = add

let mul a b =
  check a; check b;
  if a = 0 || b = 0 then 0
  else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  check a;
  if a = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(a))

let div a b =
  check a; check b;
  if b = 0 then raise Division_by_zero;
  if a = 0 then 0
  else exp_table.(((log_table.(a) - log_table.(b)) + 255) mod 255)

let pow x k =
  check x;
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  if k = 0 then 1
  else if x = 0 then 0
  else exp_table.(log_table.(x) * k mod 255)

let eval_poly coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add (mul !acc x) coeffs.(i)
  done;
  !acc
