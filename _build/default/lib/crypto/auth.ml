type t = { keys : string array }

type signature = { signer : int; tag : string }

type quorum_cert = { message : string; signers : int list }

let setup ~rng ~n =
  let key _ =
    String.init 32 (fun _ -> Char.chr (Stdx.Rng.int rng 256))
  in
  { keys = Array.init n key }

let sign t ~signer msg =
  if signer < 0 || signer >= Array.length t.keys then
    invalid_arg "Auth.sign: bad signer";
  { signer; tag = Sha256.hmac ~key:t.keys.(signer) msg }

let verify t ~msg s =
  s.signer >= 0
  && s.signer < Array.length t.keys
  && String.equal s.tag (Sha256.hmac ~key:t.keys.(s.signer) msg)

let make_cert t ~threshold ~msg sigs =
  let valid = List.filter (verify t ~msg) sigs in
  let signers =
    List.sort_uniq compare (List.map (fun s -> s.signer) valid)
  in
  if List.length signers < threshold then None
  else Some { message = msg; signers }

let verify_cert t ~threshold cert =
  (* the authority checked the MACs when assembling; in the simulation a
     forged cert can only come from make_cert bypass, which we model as
     checking signer multiplicity and range *)
  List.length (List.sort_uniq compare cert.signers) >= threshold
  && List.for_all (fun i -> i >= 0 && i < Array.length t.keys) cert.signers

let signature_size_bits = 512
let cert_size_bits = 512
