(** Systematic Reed–Solomon erasure coding over GF(2^8).

    A byte string is split into [k] data fragments; [n - k] parity
    fragments are derived so that {e any} [k] of the [n] fragments
    reconstruct the original data. Fragment [i] holds, at byte position
    [j], the evaluation at field point [i] of the degree-[< k] polynomial
    interpolating the [k] data bytes at positions [0 .. k-1].

    In the AVID broadcast the parameters are [k = f + 1], [n = 3f + 1],
    which tolerates [2f] missing fragments; Byzantine (corrupted)
    fragments are rejected upstream by Merkle proofs, so this module only
    handles {e erasures}, as in the Cachin–Tessaro protocol.

    Constraint: [0 < k <= n <= 256] (field size). *)

type coder
(** Precomputed encoding matrix for a fixed [(k, n)]. *)

val make : k:int -> n:int -> coder
(** @raise Invalid_argument if the constraint on [k], [n] is violated. *)

val fragment_length : coder -> data_len:int -> int
(** Length of each fragment for input of [data_len] bytes:
    [ceil (data_len / k)], at least 1 so empty payloads still disperse. *)

val encode : coder -> string -> string array
(** [encode c data] returns the [n] fragments. Fragments [0 .. k-1] are
    the (padded) data itself — the code is systematic. *)

val decode : coder -> data_len:int -> (int * string) list -> string
(** [decode c ~data_len fragments] reconstructs the original data from at
    least [k] fragments given as [(index, bytes)] pairs. Extra fragments
    beyond [k] are ignored.
    @raise Invalid_argument if fewer than [k] distinct valid indices are
    supplied, if an index is out of range, or if fragment lengths are
    inconsistent with [data_len]. *)
