type coder = {
  k : int;
  n : int;
  (* parity.(r).(i): Lagrange coefficient of data point i when evaluating
     at field point k + r, so that parity fragments are linear in data. *)
  parity : int array array;
}

(* Lagrange basis coefficient L_i(x) over sample points xs. *)
let lagrange_coeff xs i x =
  let xi = xs.(i) in
  let num = ref 1 and den = ref 1 in
  Array.iteri
    (fun m xm ->
      if m <> i then begin
        num := Gf256.mul !num (Gf256.sub x xm);
        den := Gf256.mul !den (Gf256.sub xi xm)
      end)
    xs;
  Gf256.div !num !den

let make ~k ~n =
  if k <= 0 || k > n || n > 256 then
    invalid_arg "Reed_solomon.make: need 0 < k <= n <= 256";
  let data_points = Array.init k (fun i -> i) in
  let parity =
    Array.init (n - k) (fun r ->
        let x = k + r in
        Array.init k (fun i -> lagrange_coeff data_points i x))
  in
  { k; n; parity }

let fragment_length c ~data_len =
  if data_len <= 0 then 1 else (data_len + c.k - 1) / c.k

let encode c data =
  let flen = fragment_length c ~data_len:(String.length data) in
  let padded = Bytes.make (flen * c.k) '\000' in
  Bytes.blit_string data 0 padded 0 (String.length data);
  let fragment i =
    if i < c.k then Bytes.sub_string padded (i * flen) flen
    else begin
      let coeffs = c.parity.(i - c.k) in
      String.init flen (fun j ->
          let acc = ref 0 in
          for d = 0 to c.k - 1 do
            let byte = Char.code (Bytes.get padded ((d * flen) + j)) in
            acc := Gf256.add !acc (Gf256.mul coeffs.(d) byte)
          done;
          Char.chr !acc)
    end
  in
  Array.init c.n fragment

let decode c ~data_len fragments =
  (* keep the first occurrence of each index, in index order, take k *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (i, frag) ->
      if i < 0 || i >= c.n then
        invalid_arg "Reed_solomon.decode: fragment index out of range";
      if not (Hashtbl.mem seen i) then Hashtbl.add seen i frag)
    fragments;
  if Hashtbl.length seen < c.k then
    invalid_arg "Reed_solomon.decode: not enough fragments";
  let flen = fragment_length c ~data_len in
  let chosen =
    let all = Hashtbl.fold (fun i frag acc -> (i, frag) :: acc) seen [] in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) all in
    Array.of_list (List.filteri (fun idx _ -> idx < c.k) sorted)
  in
  Array.iter
    (fun (_, frag) ->
      if String.length frag <> flen then
        invalid_arg "Reed_solomon.decode: inconsistent fragment length")
    chosen;
  let xs = Array.map fst chosen in
  (* coefficients to re-evaluate the interpolating polynomial at the data
     points 0 .. k-1 *)
  let coeff_rows =
    Array.init c.k (fun target ->
        Array.init c.k (fun i -> lagrange_coeff xs i target))
  in
  let padded = Bytes.create (flen * c.k) in
  for target = 0 to c.k - 1 do
    let coeffs = coeff_rows.(target) in
    for j = 0 to flen - 1 do
      let acc = ref 0 in
      for i = 0 to c.k - 1 do
        let _, frag = chosen.(i) in
        acc := Gf256.add !acc (Gf256.mul coeffs.(i) (Char.code frag.[j]))
      done;
      Bytes.set padded ((target * flen) + j) (Char.chr !acc)
    done
  done;
  Bytes.sub_string padded 0 data_len
