let p = 2147483647 (* 2^31 - 1 *)

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a - b + p

let mul a b = a * b mod p

let neg a = if a = 0 then 0 else p - a

let pow x k =
  if k < 0 then invalid_arg "Field.pow: negative exponent";
  let rec go base k acc =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go (mul base base) (k lsr 1) acc
    end
  in
  go (of_int x) k 1

let inv a =
  if a mod p = 0 then raise Division_by_zero;
  pow a (p - 2)

let div a b = mul a (inv b)

let eval_poly coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add (mul !acc x) coeffs.(i)
  done;
  !acc

let lagrange_at_zero points =
  let xs = List.map fst points in
  let distinct =
    List.length (List.sort_uniq compare xs) = List.length xs
  in
  if (not distinct) || List.exists (fun x -> of_int x = 0) xs then
    invalid_arg "Field.lagrange_at_zero: x-coordinates must be distinct and non-zero";
  List.fold_left
    (fun acc (xi, yi) ->
      let coeff =
        List.fold_left
          (fun c (xj, _) ->
            if xj = xi then c
            else mul c (div (neg (of_int xj)) (sub (of_int xi) (of_int xj))))
          1 points
      in
      add acc (mul (of_int yi) coeff))
    0 points

let interpolate_at points ~x =
  let xs = List.map fst points in
  if List.length (List.sort_uniq compare xs) <> List.length xs then
    invalid_arg "Field.interpolate_at: duplicate x-coordinates";
  let x = of_int x in
  List.fold_left
    (fun acc (xi, yi) ->
      let coeff =
        List.fold_left
          (fun c (xj, _) ->
            if xj = xi then c
            else mul c (div (sub x (of_int xj)) (sub (of_int xi) (of_int xj))))
          1 points
      in
      add acc (mul (of_int yi) coeff))
    0 points

let element_of_digest digest =
  (* fold the digest into 60 bits then reduce; bias is ~2^-29, negligible *)
  let acc = ref 0 in
  String.iter (fun c -> acc := ((!acc lsl 8) lor Char.code c) land 0xFFFFFFFFFFFFFFF) digest;
  of_int !acc
