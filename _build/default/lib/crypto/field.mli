(** Arithmetic in the prime field Z_p with p = 2^31 - 1 (a Mersenne
    prime).

    Products of two reduced elements fit in OCaml's 63-bit native [int],
    so no big-number library is needed. This field hosts the Shamir
    secret sharing behind the global perfect coin. Elements are [int] in
    [\[0, p)]. *)

val p : int
(** The modulus, 2147483647. *)

val of_int : int -> int
(** Canonical representative (handles negatives). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val neg : int -> int

val pow : int -> int -> int
(** [pow x k] for [k >= 0], by square-and-multiply. *)

val inv : int -> int
(** Multiplicative inverse via Fermat's little theorem.
    @raise Division_by_zero on 0. *)

val div : int -> int -> int
(** @raise Division_by_zero if the divisor is 0. *)

val eval_poly : int array -> int -> int
(** Horner evaluation of [coeffs.(0) + coeffs.(1)*x + ...]. *)

val lagrange_at_zero : (int * int) list -> int
(** [lagrange_at_zero points] interpolates the unique polynomial of
    degree [< length points] through the [(x, y)] pairs and returns its
    value at 0. The x-coordinates must be distinct and non-zero.
    @raise Invalid_argument otherwise. *)

val interpolate_at : (int * int) list -> x:int -> int
(** [interpolate_at points ~x] evaluates, at [x], the unique polynomial
    of degree [< length points] through the [(x_i, y_i)] pairs. The
    x-coordinates must be distinct. Used by the ADKG share-recovery
    path. @raise Invalid_argument on duplicate x-coordinates. *)

val element_of_digest : string -> int
(** Map a (SHA-256) digest to a field element, for hash-to-field uses. *)
