lib/crypto/shamir.mli: Stdx
