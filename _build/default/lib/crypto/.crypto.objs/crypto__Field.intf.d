lib/crypto/field.mli:
