lib/crypto/threshold_coin.ml: Array Field List Printf Sha256 Stdx
