lib/crypto/merkle.mli:
