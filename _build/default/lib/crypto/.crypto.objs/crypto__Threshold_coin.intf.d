lib/crypto/threshold_coin.mli: Stdx
