lib/crypto/auth.ml: Array Char List Sha256 Stdx String
