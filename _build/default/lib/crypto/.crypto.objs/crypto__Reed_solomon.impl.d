lib/crypto/reed_solomon.ml: Array Bytes Char Gf256 Hashtbl List String
