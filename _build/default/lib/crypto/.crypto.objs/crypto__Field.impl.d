lib/crypto/field.ml: Array Char List String
