lib/crypto/shamir.ml: Array Field List Stdx
