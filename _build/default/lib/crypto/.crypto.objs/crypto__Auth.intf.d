lib/crypto/auth.mli: Stdx
