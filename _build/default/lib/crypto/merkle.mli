(** Merkle trees over SHA-256 with inclusion proofs.

    AVID commits to the vector of Reed–Solomon fragments with a Merkle
    root; each fragment travels with its authentication path so receivers
    can verify fragments from Byzantine relayers without seeing the whole
    vector. Leaves are domain-separated from inner nodes (prefix bytes
    [\x00] / [\x01]) to prevent second-preimage splicing attacks. *)

type tree

type proof = {
  leaf_index : int;
  path : string list;
      (** Sibling digests from the leaf's level up to (excluding) the root. *)
}

val build : string array -> tree
(** Build a tree over the given leaves (payload bytes, hashed internally).
    Odd levels duplicate the last node, so any positive arity works.
    @raise Invalid_argument on an empty array. *)

val root : tree -> string
(** 32-byte root digest. *)

val leaf_count : tree -> int

val prove : tree -> int -> proof
(** Inclusion proof for the leaf at the given index.
    @raise Invalid_argument if the index is out of range. *)

val verify : root:string -> leaf_count:int -> leaf:string -> proof -> bool
(** [verify ~root ~leaf_count ~leaf proof] checks that [leaf]'s payload
    sits at [proof.leaf_index] in a tree with the given root and size. *)
