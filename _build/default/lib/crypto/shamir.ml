type share = { x : int; y : int }

let deal ~rng ~secret ~threshold ~shares =
  if threshold < 1 || threshold > shares then
    invalid_arg "Shamir.deal: need 1 <= threshold <= shares";
  if shares >= Field.p then invalid_arg "Shamir.deal: too many shares";
  let coeffs =
    Array.init threshold (fun i ->
        if i = 0 then Field.of_int secret else Stdx.Rng.int rng Field.p)
  in
  List.init shares (fun i ->
      let x = i + 1 in
      { x; y = Field.eval_poly coeffs x })

let reconstruct ~threshold shares =
  let dedup =
    List.sort_uniq (fun a b -> compare a.x b.x) shares
  in
  if List.length dedup < threshold then
    invalid_arg "Shamir.reconstruct: not enough distinct shares";
  let chosen = List.filteri (fun i _ -> i < threshold) dedup in
  Field.lagrange_at_zero (List.map (fun s -> (s.x, s.y)) chosen)
