type digest = string

(* Round constants: first 32 bits of the fractional parts of the cube
   roots of the first 64 primes (FIPS 180-4 §4.2.2). *)
let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type state = {
  h : int32 array; (* 8 chaining words *)
  buf : Bytes.t;   (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total bytes fed *)
}

type ctx = { mutable st : state option }

let initial_h () =
  [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
     0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n)
    (Int32.shift_left x (32 - n))

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

let compress h block off =
  let w = Array.make 64 0l in
  for t = 0 to 15 do
    let base = off + (t * 4) in
    let b i = Int32.of_int (Char.code (Bytes.get block (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for t = 16 to 63 do
    let s0 =
      rotr w.(t - 15) 7 ^% rotr w.(t - 15) 18
      ^% Int32.shift_right_logical w.(t - 15) 3
    in
    let s1 =
      rotr w.(t - 2) 17 ^% rotr w.(t - 2) 19
      ^% Int32.shift_right_logical w.(t - 2) 10
    in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let t1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let t2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let fresh_state () =
  { h = initial_h (); buf = Bytes.create 64; buf_len = 0; total = 0L }

let feed_state st s =
  let len = String.length s in
  st.total <- Int64.add st.total (Int64.of_int len);
  let pos = ref 0 in
  (* fill the partial block first *)
  if st.buf_len > 0 then begin
    let take = min (64 - st.buf_len) len in
    Bytes.blit_string s 0 st.buf st.buf_len take;
    st.buf_len <- st.buf_len + take;
    pos := take;
    if st.buf_len = 64 then begin
      compress st.h st.buf 0;
      st.buf_len <- 0
    end
  end;
  (* whole blocks directly from the input *)
  let tmp = Bytes.create 64 in
  while len - !pos >= 64 do
    Bytes.blit_string s !pos tmp 0 64;
    compress st.h tmp 0;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos st.buf 0 (len - !pos);
    st.buf_len <- len - !pos
  end

let finalize_state st =
  let bit_len = Int64.mul st.total 8L in
  (* padding: 0x80, zeros, 8-byte big-endian bit length *)
  let zeros =
    let rem = (st.buf_len + 1) mod 64 in
    if rem <= 56 then 56 - rem else 56 + 64 - rem
  in
  let tail = Bytes.create (1 + zeros + 8) in
  Bytes.fill tail 0 (Bytes.length tail) '\000';
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail
      (1 + zeros + i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xFFL)))
  done;
  feed_state st (Bytes.to_string tail);
  assert (st.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = st.h.(i) in
    let byte shift =
      Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v shift) 0xFFl))
    in
    Bytes.set out (4 * i) (byte 24);
    Bytes.set out ((4 * i) + 1) (byte 16);
    Bytes.set out ((4 * i) + 2) (byte 8);
    Bytes.set out ((4 * i) + 3) (byte 0)
  done;
  Bytes.to_string out

let init () = { st = Some (fresh_state ()) }

let feed ctx s =
  match ctx.st with
  | None -> invalid_arg "Sha256.feed: context already finalized"
  | Some st -> feed_state st s

let finalize ctx =
  match ctx.st with
  | None -> invalid_arg "Sha256.finalize: context already finalized"
  | Some st ->
    ctx.st <- None;
    finalize_state st

let digest_string s =
  let st = fresh_state () in
  feed_state st s;
  finalize_state st

let digest_bytes b = digest_string (Bytes.to_string b)

let to_hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let hmac ~key msg =
  let block = 64 in
  let key = if String.length key > block then digest_string key else key in
  let key_padded = Bytes.make block '\000' in
  Bytes.blit_string key 0 key_padded 0 (String.length key);
  let xor_with c =
    String.init block (fun i ->
        Char.chr (Char.code (Bytes.get key_padded i) lxor Char.code c))
  in
  let ipad = xor_with '\x36' and opad = xor_with '\x5c' in
  digest_string (opad ^ digest_string (ipad ^ msg))
