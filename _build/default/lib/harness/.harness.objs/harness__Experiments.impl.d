lib/harness/experiments.ml: Baselines Buffer Crypto Dagrider Float Fun List Metrics Net Printf Runner Sim Stdx String
