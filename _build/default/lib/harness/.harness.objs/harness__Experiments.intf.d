lib/harness/experiments.mli:
