lib/harness/runner.mli: Crypto Dagrider Metrics Net Sim Stdx
