lib/harness/runner.ml: Array Char Crypto Dagrider Hashtbl List Metrics Net Option Printf Rbc Sim Stdx String
