type tx = { owner : int; seqno : int; body : string }

(* Serialization avoids the record separator \x1e inside fields by
   construction: owner/seqno are decimal and the body is alphanumeric. *)
let field_sep = '\x1f'
let record_sep = '\x1e'

let tx_to_string tx =
  Printf.sprintf "%d%c%d%c%s" tx.owner field_sep tx.seqno field_sep tx.body

let tx_of_string s =
  match String.split_on_char field_sep s with
  | [ owner; seqno; body ] -> (
    match (int_of_string_opt owner, int_of_string_opt seqno) with
    | Some owner, Some seqno -> Some { owner; seqno; body }
    | _ -> None)
  | _ -> None

let tx_bytes ~body_bytes =
  (* "<owner>\x1f<seqno>\x1f<body>" with ~4-digit counters *)
  body_bytes + 12

type gen = { owner : int; body_bytes : int; mutable seqno : int }

let gen ~owner ~body_bytes = { owner; body_bytes; seqno = 0 }

let synth_body g =
  let tag = Printf.sprintf "t%d.%d." g.owner g.seqno in
  if String.length tag >= g.body_bytes then tag
  else tag ^ String.make (g.body_bytes - String.length tag) 'a'

let next_tx g =
  let tx = { owner = g.owner; seqno = g.seqno; body = synth_body g } in
  g.seqno <- g.seqno + 1;
  tx

let produced g = g.seqno

let block_of_txs txs =
  String.concat (String.make 1 record_sep) (List.map tx_to_string txs)

let make_block g ~count =
  block_of_txs (List.init count (fun _ -> next_tx g))

let block_txs block =
  if String.length block = 0 then []
  else
    List.filter_map tx_of_string (String.split_on_char record_sep block)
