lib/workload/mempool.mli: Txgen
