lib/workload/mempool.ml: Hashtbl List Queue Txgen
