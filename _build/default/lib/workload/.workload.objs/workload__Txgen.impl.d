lib/workload/txgen.ml: List Printf String
