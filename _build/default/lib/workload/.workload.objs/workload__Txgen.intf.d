lib/workload/txgen.mli:
