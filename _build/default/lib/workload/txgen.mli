(** Transaction and block generation for the experiments.

    The paper measures communication per {e transaction} and assumes
    each broadcast message carries a block (batch) of transactions (§3).
    This module produces deterministic synthetic transactions, batches
    them into blocks, and parses blocks back for auditing (e.g. checking
    that a censored process's transactions were eventually ordered). *)

type tx = {
  owner : int;   (** proposing process *)
  seqno : int;   (** per-owner sequence number *)
  body : string; (** opaque payload *)
}

val tx_to_string : tx -> string
val tx_of_string : string -> tx option

val tx_bytes : body_bytes:int -> int
(** Serialized size of a transaction with the given body size (for
    batch-size arithmetic in the experiments). *)

type gen
(** Deterministic per-owner transaction stream. *)

val gen : owner:int -> body_bytes:int -> gen

val next_tx : gen -> tx
val produced : gen -> int

val make_block : gen -> count:int -> string
(** Batch the next [count] transactions into one block. *)

val block_txs : string -> tx list
(** Parse a block back into transactions ([] for blocks produced
    elsewhere, e.g. the harness's padding blocks). *)

val block_of_txs : tx list -> string
