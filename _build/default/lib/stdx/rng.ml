type t = { mutable state : int64 }

(* SplitMix64 constants; see Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  (* mix with a different finalizer so parent/child streams differ even for
     pathological seeds *)
  { state = Int64.mul seed 0xFF51AFD7ED558CCDL }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next t) mask) in
  v mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into the mantissa *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~k ~n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

let exponential t ~mean =
  let u = float t 1.0 in
  (* avoid log 0 *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  let rec loop k = if float t 1.0 < p then k else loop (k + 1) in
  loop 1
