lib/stdx/pqueue.ml: Array
