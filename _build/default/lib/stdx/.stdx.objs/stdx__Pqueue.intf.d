lib/stdx/pqueue.mli:
