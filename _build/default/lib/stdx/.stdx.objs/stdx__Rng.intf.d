lib/stdx/rng.mli:
