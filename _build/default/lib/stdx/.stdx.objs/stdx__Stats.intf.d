lib/stdx/stats.mli:
