lib/stdx/table.mli:
