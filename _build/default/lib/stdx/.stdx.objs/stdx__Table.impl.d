lib/stdx/table.ml: Array Buffer List String
