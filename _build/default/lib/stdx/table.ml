let render ~header ~rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Table.render: ragged row")
    rows;
  let all = header :: rows in
  let widths = Array.make arity 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    cell ^ String.make (w - String.length cell) ' '
  in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  emit_row header;
  Buffer.add_string buf "|";
  Array.iter
    (fun w -> Buffer.add_string buf (String.make (w + 2) '-' ^ "|"))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)
