(** Minimum-priority queue keyed by [(priority, sequence)] pairs.

    The discrete-event engine pops events in order of virtual time; ties
    are broken by an insertion sequence number so that execution is fully
    deterministic regardless of heap internals. The structure is a classic
    binary heap over a growable array. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> seq:int -> 'a -> unit
(** [push q ~priority ~seq v] inserts [v]. Lower [priority] pops first;
    among equal priorities, lower [seq] pops first. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> (float * int * 'a) option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit

val to_list_unordered : 'a t -> 'a list
(** Snapshot of the contents in arbitrary order (for debugging and
    invariant checks). *)
