(** Deterministic, splittable pseudo-random number generator.

    Every run of the simulator must be reproducible from a single integer
    seed, including runs that fan out into independent logical streams
    (one per process, one for the adversary, one per workload generator).
    The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014),
    which has a cheap [split] operation producing a statistically
    independent child stream — exactly what a deterministic discrete-event
    simulation needs.

    This module is NOT cryptographically secure and is never used where
    the paper requires unpredictability (the threshold coin has its own
    construction in [Crypto.Threshold_coin]). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal
    seeds yield equal streams. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose future output
    is independent of [t]'s, so sub-components can draw randomness without
    perturbing each other's streams. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] draws uniformly from the inclusive range
    [\[lo, hi\]]. @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement t ~k ~n] draws [k] distinct integers from
    [\[0, n)], in random order. @raise Invalid_argument if [k > n]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for message
    delay models. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) trials until the first success (>= 1). *)
