(** Minimal fixed-width ASCII table rendering for experiment output.

    The benchmark harnesses print rows shaped like the paper's Table 1;
    this module keeps that formatting in one place. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] lays the table out with column widths fitted to
    the longest cell, a separator under the header, and ["|"] column
    separators. All rows must have the same arity as the header.
    @raise Invalid_argument on ragged rows. *)

val print : header:string list -> rows:string list list -> unit
(** [render] followed by [print_string]. *)
