(** Asynchronous distributed key generation for the threshold coin —
    the paper's §2 relaxation of the trusted-dealer assumption
    ("this assumption can be relaxed by executing an O(n^4) message
    complexity Asynchronous Distributed Key Generation protocol [30]",
    i.e. Kokoris-Kogias, Malkhi, Spiegelman, CCS 2020).

    Faithful-shape simplified protocol:
    + {b deal}: every party samples a random degree-[f] polynomial
      [P_i], privately sends [P_i(j+1)] to each party [j], and
      broadcasts a commitment vector (here: per-point digests — a
      modeled stand-in for Feldman commitments, same dataflow);
    + {b certify}: a party that received a share matching the dealer's
      commitment broadcasts an [Ack]; a dealing with [2f+1] acks is
      {e certified} — at least [f+1] correct parties hold verified
      shares, so every share is recoverable;
    + {b agree}: parties propose their certified-dealer sets through a
      {!Baselines.Vaba} instance; the decided proposal is the qualified
      set [Q] (|Q| >= f+1 guarantees an honest dealing in [Q], keeping
      the sum unpredictable to the adversary);
    + {b aggregate}: each party's key is [sum_{i in Q} P_i(me+1)] —
      evaluations of the degree-[f] polynomial [sum_{i in Q} P_i], so
      any [f+1] keys interpolate the same master secret, which is
      exactly the {!Crypto.Threshold_coin} key shape;
    + {b recover}: a party missing its share from some certified dealer
      in [Q] asks the network; [f+1] responders' points interpolate the
      dealer's polynomial at the requester's index. (In the real
      protocol recovery is done under encryption; here the dataflow is
      reproduced and the privacy loss is a documented modeling choice.)

    Bootstrap: the VABA agreement step itself needs a coin. The real
    KMS'20 construction bootstraps a weaker coin from the aggregated
    dealings; here the ceremony takes a [bootstrap_coin] argument
    (documented substitution, DESIGN.md §2) — the {e output} key is
    dealer-free, which is what the DAG-Rider deployment consumes. *)

type msg

type t

val create :
  net:msg Net.Network.t ->
  vaba_net:Baselines.Vaba.msg Net.Network.t ->
  auth:Crypto.Auth.t ->
  bootstrap_coin:Crypto.Threshold_coin.t ->
  rng:Stdx.Rng.t ->
  me:int ->
  f:int ->
  on_key:(key:int -> qualified:int list -> unit) ->
  unit ->
  t
(** [on_key] fires once, when this party has derived its aggregated key
    for the decided qualified set. *)

val start : t -> unit

val key : t -> int option
val qualified : t -> int list option

val derived_secret : t -> int option
(** Sum of this party's {e own dealings'} secrets that made it into Q —
    testing hook: summing the qualified dealers' secrets must equal the
    value any f+1 output keys interpolate to. *)
