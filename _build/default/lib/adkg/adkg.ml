open Rbc.Rbc_intf

type msg =
  | Commit of { dealer : int; commitment : string array }
      (* commitment.(j) = H(P_dealer(j+1)); broadcast *)
  | Deal of { dealer : int; share : int } (* private: P_dealer(me+1) *)
  | Ack of { dealer : int } (* broadcast: my share verified *)
  | Recover_req of { dealer : int }
  | Recover_share of { dealer : int; x : int; y : int }

type dealing = {
  mutable commitment : string array option;
  mutable my_share : int option; (* verified against the commitment *)
  mutable pending_share : int option; (* arrived before the commitment *)
  mutable ackers : Iset.t;
  mutable acked : bool;
  mutable recovery_points : (int * int) list; (* verified (x, y) pairs *)
  mutable recover_requested : bool;
}

type t = {
  net : msg Net.Network.t;
  rng : Stdx.Rng.t;
  me : int;
  n : int;
  f : int;
  on_key : key:int -> qualified:int list -> unit;
  mutable my_poly : int array; (* degree f; coeffs.(0) is my secret *)
  dealings : (int, dealing) Hashtbl.t;
  mutable certified : Iset.t;
  mutable vaba : Baselines.Vaba.t option;
  mutable vaba_started : bool;
  mutable qualified : int list option;
  mutable key : int option;
  mutable started : bool;
}

let share_digest y = Crypto.Sha256.digest_string (Printf.sprintf "adkg:%d" y)

let dealing t dealer =
  match Hashtbl.find_opt t.dealings dealer with
  | Some d -> d
  | None ->
    let d =
      { commitment = None;
        my_share = None;
        pending_share = None;
        ackers = Iset.empty;
        acked = false;
        recovery_points = [];
        recover_requested = false }
    in
    Hashtbl.add t.dealings dealer d;
    d

(* ---- qualified-set serialization (rides through VABA) ---- *)

let set_to_string ids = String.concat "," (List.map string_of_int ids)

let set_of_string ~n ~f s =
  match
    List.map int_of_string_opt (String.split_on_char ',' s)
    |> List.fold_left
         (fun acc x ->
           match (acc, x) with Some acc, Some x -> Some (x :: acc) | _ -> None)
         (Some [])
  with
  | Some ids ->
    let ids = List.rev ids in
    let sorted_distinct = List.sort_uniq compare ids = ids in
    if
      sorted_distinct
      && List.length ids >= f + 1
      && List.for_all (fun i -> i >= 0 && i < n) ids
    then Some ids
    else None
  | None -> None

(* ---- completion ---- *)

let try_finish t =
  match (t.qualified, t.key) with
  | Some q, None ->
    let shares =
      List.map (fun dealer -> (dealing t dealer).my_share) q
    in
    if List.for_all Option.is_some shares then begin
      let key =
        List.fold_left
          (fun acc s -> Crypto.Field.add acc (Option.get s))
          0 shares
      in
      t.key <- Some key;
      t.on_key ~key ~qualified:q
    end
    else
      (* ask the network to recover the missing shares *)
      List.iter
        (fun dealer ->
          let d = dealing t dealer in
          if d.my_share = None && not d.recover_requested then begin
            d.recover_requested <- true;
            (* u8 tag + u32 dealer *)
            Net.Network.broadcast t.net ~src:t.me ~kind:"adkg-recover-req"
              ~bits:(8 * 5)
              (Recover_req { dealer })
          end)
        q
  | _ -> ()

let on_vaba_decide t ~value =
  if t.qualified = None then
    match set_of_string ~n:t.n ~f:t.f value with
    | Some q ->
      t.qualified <- Some q;
      try_finish t
    | None -> () (* unreachable: VABA's validity predicate filters *)

(* ---- share verification ---- *)

let verify_and_store t ~dealer (d : dealing) =
  match (d.commitment, d.pending_share) with
  | Some commitment, Some share when d.my_share = None ->
    if
      t.me < Array.length commitment
      && String.equal (share_digest share) commitment.(t.me)
    then begin
      d.my_share <- Some share;
      if not d.acked then begin
        d.acked <- true;
        (* u8 tag + u32 dealer + 64-byte signature share *)
        Net.Network.broadcast t.net ~src:t.me ~kind:"adkg-ack"
          ~bits:(8 * (5 + 64))
          (Ack { dealer })
      end;
      try_finish t
    end
  | _ -> ()

let maybe_start_vaba t =
  if Iset.cardinal t.certified >= t.f + 1 && not t.vaba_started then begin
    t.vaba_started <- true;
    match t.vaba with Some v -> Baselines.Vaba.start v | None -> ()
  end

let handle t ~src msg =
  match msg with
  | Commit { dealer; commitment } when dealer = src ->
    let d = dealing t dealer in
    if d.commitment = None && Array.length commitment = t.n then begin
      d.commitment <- Some commitment;
      verify_and_store t ~dealer d
    end
  | Commit _ -> () (* relayed commitments are ignored: source must match *)
  | Deal { dealer; share } when dealer = src ->
    let d = dealing t dealer in
    if d.pending_share = None then begin
      d.pending_share <- Some (Crypto.Field.of_int share);
      verify_and_store t ~dealer d
    end
  | Deal _ -> ()
  | Ack { dealer } ->
    let d = dealing t dealer in
    d.ackers <- Iset.add src d.ackers;
    if Iset.cardinal d.ackers >= (2 * t.f) + 1 then begin
      t.certified <- Iset.add dealer t.certified;
      maybe_start_vaba t
    end
  | Recover_req { dealer } -> (
    let d = dealing t dealer in
    match d.my_share with
    | Some y ->
      (* u8 tag + u32 dealer + u32 x + u32 y *)
      Net.Network.send t.net ~src:t.me ~dst:src ~kind:"adkg-recover-share"
        ~bits:(8 * 13)
        (Recover_share { dealer; x = t.me + 1; y })
    | None -> ())
  | Recover_share { dealer; x; y } -> (
    let d = dealing t dealer in
    match (d.commitment, d.my_share) with
    | Some commitment, None
      when x = src + 1
           && x - 1 < Array.length commitment
           && String.equal (share_digest y) commitment.(x - 1)
           && not (List.mem_assoc x d.recovery_points) ->
      d.recovery_points <- (x, y) :: d.recovery_points;
      if List.length d.recovery_points >= t.f + 1 then begin
        let mine =
          Crypto.Field.interpolate_at d.recovery_points ~x:(t.me + 1)
        in
        (* cross-check the interpolated point against the commitment:
           a Byzantine dealer whose committed values are not on one
           degree-f polynomial is detected here *)
        if String.equal (share_digest mine) commitment.(t.me) then begin
          d.my_share <- Some mine;
          try_finish t
        end
      end
    | _ -> ())

let create ~net ~vaba_net ~auth ~bootstrap_coin ~rng ~me ~f ~on_key () =
  let n = Net.Network.n net in
  let t =
    { net;
      rng;
      me;
      n;
      f;
      on_key;
      my_poly = Array.init (f + 1) (fun _ -> Stdx.Rng.int rng Crypto.Field.p);
      dealings = Hashtbl.create 16;
      certified = Iset.empty;
      vaba = None;
      vaba_started = false;
      qualified = None;
      key = None;
      started = false }
  in
  Net.Network.register net me (fun ~src msg -> handle t ~src msg);
  t.vaba <-
    Some
      (Baselines.Vaba.create ~net:vaba_net ~auth ~coin:bootstrap_coin ~me ~f
         ~tag:424_242
         ~valid:(fun v -> set_of_string ~n ~f v <> None)
         ~proposal:(fun ~me:_ -> set_to_string (Iset.elements t.certified))
         ~decide:(fun ~value ~view:_ -> on_vaba_decide t ~value)
         ());
  t

let start t =
  if not t.started then begin
    t.started <- true;
    let commitment =
      Array.init t.n (fun j ->
          share_digest (Crypto.Field.eval_poly t.my_poly (j + 1)))
    in
    (* u8 tag + u32 dealer + n 32-byte digests *)
    Net.Network.broadcast t.net ~src:t.me ~kind:"adkg-commit"
      ~bits:(8 * (5 + (t.n * 36)))
      (Commit { dealer = t.me; commitment });
    for j = 0 to t.n - 1 do
      (* u8 tag + u32 dealer + u32 share *)
      Net.Network.send t.net ~src:t.me ~dst:j ~kind:"adkg-deal"
        ~bits:(8 * 9)
        (Deal { dealer = t.me; share = Crypto.Field.eval_poly t.my_poly (j + 1) })
    done
  end

let key t = t.key

let qualified t = t.qualified

let derived_secret t =
  match t.qualified with
  | Some q when List.mem t.me q -> Some t.my_poly.(0)
  | _ -> None
