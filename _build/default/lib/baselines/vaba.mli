(** VABA — Validated Asynchronous Byzantine Agreement (Abraham, Malkhi,
    Spiegelman, PODC 2019), the single-shot baseline behind Table 1's
    "VABA SMR" row.

    Faithful-shape simplified implementation. Per view:
    + every party {e promotes} its value through four sequential
      broadcast stages (echo → key → lock → commit); each stage [s > 1]
      carries a quorum certificate of [2f+1] acknowledgements of stage
      [s-1], and acknowledgers remember the highest stage they saw per
      promoter (their key/lock/commit state);
    + a party that certifies stage 4 broadcasts [Done]; after [2f+1]
      [Done]s parties release their threshold-coin share and the view's
      leader is elected {e retrospectively};
    + parties exchange [ViewChange] reports of the leader's promotion
      progress: any commit-stage report decides the leader's value; a
      key/lock-stage report makes parties {e adopt} the leader's value
      for the next view; otherwise they re-propose their own.
    A first decision is broadcast with its certificate so laggards
    terminate.

    Simplifications vs the full paper (documented in DESIGN.md §2):
    no skip/fast-abandon messages (liveness in our scheduler does not
    need them), modeled signatures, external validity elided. The
    complexity shape is preserved: O(n^2) messages of O(|v| + lambda)
    bits per view, an expected ~3/2 views per decision, and — the
    fairness-relevant property — {e only the elected leader's value is
    decided}, everyone else must re-propose. *)

type msg

type t

val create :
  net:msg Net.Network.t ->
  auth:Crypto.Auth.t ->
  coin:Crypto.Threshold_coin.t ->
  me:int ->
  f:int ->
  tag:int ->
  ?valid:(string -> bool) ->
  proposal:(me:int -> string) ->
  decide:(value:string -> view:int -> unit) ->
  unit ->
  t
(** One agreement instance. [tag] domain-separates coin instances when
    several VABA instances share a coin (the SMR driver runs many; each
    instance has its own network). [valid] is the external-validity
    predicate (Dumbo rejects proposals that do not parse as dispersal
    certificates — default accepts everything): parties never
    acknowledge promotion stages of invalid values, so an invalid value
    cannot be certified or decided. [proposal] supplies this party's
    (re)proposal; [decide] fires exactly once. *)

val start : t -> unit

val decided : t -> string option
val view : t -> int
(** Current view number (>= 1); the decision view measures how many
    views the instance needed. *)
