(** Dumbo-MVBA (Lu, Lu, Tang, Wang, PODC 2020): the amortized-O(n)
    baseline of Table 1's "Dumbo SMR" row.

    Structure per instance, following the paper's
    dispersal-then-agree-then-recast recipe:
    + every party {!Dispersal.disperse}s its batch and waits for its own
      dispersal certificate (constant size);
    + parties run {!Vaba} with the {e serialized certificate} as
      proposal — agreement on O(lambda) bits instead of O(|batch|);
    + the winning certificate is {!Dispersal.recast} and the
      reconstructed batch is the instance's decision.

    Bits per instance: n dispersals of O(|B| + n log n · lambda) + VABA
    on constants O(n^2 lambda) + one recast O(n |B|) — with batches of
    n log n transactions, amortized O(n) bits per transaction, which is
    the row the paper compares against. Only the MVBA winner's batch is
    delivered; everyone else re-proposes — hence no eventual fairness,
    also per Table 1. *)

type t

val create :
  disp_net:Dispersal.msg Net.Network.t ->
  vaba_net:Vaba.msg Net.Network.t ->
  auth:Crypto.Auth.t ->
  coin:Crypto.Threshold_coin.t ->
  me:int ->
  f:int ->
  tag:int ->
  batch:string ->
  decide:(batch:string -> unit) ->
  unit ->
  t
(** [decide] fires once with the reconstructed winning batch. *)

val start : t -> unit

val decided : t -> string option
