open Rbc.Rbc_intf

type msg =
  | Bval of { round : int; value : bool }
  | Aux of { round : int; value : bool }
  | Decided of { value : bool }
      (* halting layer: on deciding, broadcast Decided; f+1 matching
         Decided messages let stragglers decide without more rounds;
         2f+1 let a process halt entirely (quiescence) *)

let encode_msg msg =
  let buf = Buffer.create 8 in
  (match msg with
  | Bval { round; value } ->
    Wire.put_u8 buf 1;
    Wire.put_u32 buf round;
    Wire.put_bool buf value
  | Aux { round; value } ->
    Wire.put_u8 buf 2;
    Wire.put_u32 buf round;
    Wire.put_bool buf value
  | Decided { value } ->
    Wire.put_u8 buf 3;
    Wire.put_bool buf value);
  Buffer.contents buf

let msg_bits msg = Wire.bits (encode_msg msg)

type round_state = {
  mutable bval_received : Iset.t * Iset.t; (* senders for false, true *)
  mutable bval_sent : bool * bool; (* relayed false / true *)
  mutable bin_values : bool list;
  mutable aux_sent : bool;
  mutable aux_received : (int * bool) list; (* sender, value *)
  mutable done_ : bool;
}

type t = {
  net : msg Net.Network.t;
  coin : Crypto.Threshold_coin.t;
  me : int;
  f : int;
  tag : int;
  decide_cb : bool -> unit;
  rounds : (int, round_state) Hashtbl.t;
  mutable round : int;
  mutable est : bool;
  mutable decided : bool option;
  mutable halted : bool;
  mutable started : bool;
  mutable decided_senders : Iset.t * Iset.t; (* Decided senders per value *)
}

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some st -> st
  | None ->
    let st =
      { bval_received = (Iset.empty, Iset.empty);
        bval_sent = (false, false);
        bin_values = [];
        aux_sent = false;
        aux_received = [];
        done_ = false }
    in
    Hashtbl.add t.rounds r st;
    st

let quorum t = (2 * t.f) + 1

(* The common coin for this instance's round r. The coin returns a
   process index; its parity is an unpredictable fair bit. *)
let coin_bit t ~round =
  let instance = (((t.tag * 1_000_003) + round) * 7) + 3 in
  let shares =
    (* local deterministic derivation: every process can compute every
       share, so the combine is a pure function of (tag, round) — this
       models the "coin already set up" case; the DAG-Rider stack uses
       the full share-exchange transport instead *)
    List.init
      (Crypto.Threshold_coin.threshold t.coin)
      (fun holder -> Crypto.Threshold_coin.make_share t.coin ~holder ~instance)
  in
  match Crypto.Threshold_coin.combine t.coin ~instance shares with
  | Some leader -> leader land 1 = 1
  | None -> false (* unreachable: threshold shares supplied *)

let send_bval t ~round ~value =
  let st = round_state t round in
  let sent_f, sent_t = st.bval_sent in
  let already = if value then sent_t else sent_f in
  if not already then begin
    st.bval_sent <- (if value then (sent_f, true) else (true, sent_t));
    let msg = Bval { round; value } in
    Net.Network.broadcast t.net ~src:t.me ~kind:"abba-bval"
      ~bits:(msg_bits msg) msg
  end

let send_aux t ~round ~value =
  let st = round_state t round in
  if not st.aux_sent then begin
    st.aux_sent <- true;
    let msg = Aux { round; value } in
    Net.Network.broadcast t.net ~src:t.me ~kind:"abba-aux"
      ~bits:(msg_bits msg) msg
  end

let announce_decide t v =
  if t.decided = None then begin
    t.decided <- Some v;
    let msg = Decided { value = v } in
    Net.Network.broadcast t.net ~src:t.me ~kind:"abba-decided"
      ~bits:(msg_bits msg) msg;
    t.decide_cb v
  end

let rec try_progress t ~round =
  if round = t.round then begin
    let st = round_state t round in
    (* step 2: first value entering bin_values triggers our AUX *)
    (match st.bin_values with
    | v :: _ when not st.aux_sent -> send_aux t ~round ~value:v
    | _ -> ());
    (* step 3: 2f+1 AUX from distinct senders, all carrying values that
       made it into bin_values *)
    if (not st.done_) && st.aux_sent then begin
      let valid =
        List.filter (fun (_, v) -> List.mem v st.bin_values) st.aux_received
      in
      let senders =
        List.sort_uniq compare (List.map fst valid)
      in
      if List.length senders >= quorum t then begin
        st.done_ <- true;
        let vals =
          List.sort_uniq compare (List.map snd valid)
        in
        let c = coin_bit t ~round in
        (match vals with
        | [ v ] ->
          if v = c then announce_decide t v;
          t.est <- v
        | _ -> t.est <- c);
        (* advance even after deciding: stragglers' rounds must be able
           to complete; quiescence comes when everyone stops sending *)
        t.round <- round + 1;
        start_round t
      end
    end
  end

and start_round t =
  let round = t.round in
  send_bval t ~round ~value:t.est;
  (* messages for this round may have arrived early *)
  try_progress t ~round

let handle t ~src msg =
  if not t.halted then
  match msg with
  | Decided { value } ->
    let df, dt = t.decided_senders in
    let set = Iset.add src (if value then dt else df) in
    t.decided_senders <- (if value then (df, set) else (set, dt));
    let count = Iset.cardinal set in
    (* f+1 distinct deciders include a correct one: safe to adopt *)
    if count >= t.f + 1 then announce_decide t value;
    (* 2f+1: every correct process will reach f+1 without us *)
    if count >= quorum t && t.decided = Some value then t.halted <- true
  | Bval { round; value } ->
    let st = round_state t round in
    let rf, rt = st.bval_received in
    let set = if value then rt else rf in
    let set = Iset.add src set in
    st.bval_received <- (if value then (rf, set) else (set, rt));
    let count = Iset.cardinal set in
    (* f+1: a correct process backs the value — relay it *)
    if count >= t.f + 1 then send_bval t ~round ~value;
    (* 2f+1: the value is anchored — it may be AUXed and decided *)
    if count >= quorum t && not (List.mem value st.bin_values) then begin
      st.bin_values <- value :: st.bin_values;
      try_progress t ~round
    end;
    try_progress t ~round
  | Aux { round; value } ->
    let st = round_state t round in
    if not (List.mem_assoc src st.aux_received) then begin
      st.aux_received <- (src, value) :: st.aux_received;
      try_progress t ~round
    end

let create ~net ~coin ~me ~f ~tag ~decide () =
  let t =
    { net;
      coin;
      me;
      f;
      tag;
      decide_cb = decide;
      rounds = Hashtbl.create 8;
      round = 1;
      est = false;
      decided = None;
      halted = false;
      started = false;
      decided_senders = (Iset.empty, Iset.empty) }
  in
  Net.Network.register net me (fun ~src msg -> handle t ~src msg);
  t

let propose t value =
  if t.started then invalid_arg "Abba.propose: already proposed";
  t.started <- true;
  t.est <- value;
  start_round t

let decided t = t.decided

let rounds_used t = t.round - 1
