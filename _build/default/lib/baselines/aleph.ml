module Vertex = Dagrider.Vertex
module Dag = Dagrider.Dag

type proc = {
  me : int;
  dag : Dag.t;
  mutable buffer : Vertex.t list;
  mutable round : int;
  mutable voted_up_to : int; (* highest round whose slots we proposed on *)
  decisions : (int * int, bool) Hashtbl.t; (* (round, source) -> verdict *)
  mutable next_order : int; (* next round to fold into the total order *)
  mutable log_rev : Vertex.t list;
  delivered : (Vertex.vref, unit) Hashtbl.t;
}

type t = {
  engine : Sim.Engine.t;
  counters : Metrics.Counters.t;
  sched : Net.Sched.t;
  coin : Crypto.Threshold_coin.t;
  n : int;
  f : int;
  block : round:int -> me:int -> string;
  procs : proc array;
  mutable rbcs : Rbc.Bracha.t array;
  (* each (round, source) agreement instance gets its own channel,
     created when the first process wants to vote on it *)
  abba : (int * int, Abba.t array) Hashtbl.t;
  mutable abba_count : int;
  mutable started : bool;
}

(* ---- ordering ---- *)

let deliver_history proc vref =
  List.iter
    (fun v ->
      if not (Hashtbl.mem proc.delivered (Vertex.vref_of v)) then begin
        Hashtbl.add proc.delivered (Vertex.vref_of v) ();
        proc.log_rev <- v :: proc.log_rev
      end)
    (Dag.causal_history proc.dag vref)

let rec try_order t proc =
  let r = proc.next_order in
  let verdicts =
    List.init t.n (fun source -> Hashtbl.find_opt proc.decisions (r, source))
  in
  if List.for_all Option.is_some verdicts then begin
    let included =
      List.concat
        (List.mapi
           (fun source v -> if v = Some true then [ source ] else [])
           verdicts)
    in
    (* every included vertex must be locally present before the round
       can be folded in (reliable broadcast guarantees arrival) *)
    if
      List.for_all
        (fun source -> Dag.contains proc.dag { Vertex.round = r; source })
        included
    then begin
      List.iter
        (fun source -> deliver_history proc { Vertex.round = r; source })
        included;
      proc.next_order <- r + 1;
      try_order t proc
    end
  end

(* ---- binary agreements ---- *)

let abba_for t ~round ~source =
  match Hashtbl.find_opt t.abba (round, source) with
  | Some instances -> instances
  | None ->
    let net =
      Net.Network.create ~engine:t.engine ~sched:t.sched ~counters:t.counters
        ~n:t.n
    in
    let tag = (round * t.n) + source + 1 in
    let instances =
      Array.init t.n (fun me ->
          Abba.create ~net ~coin:t.coin ~me ~f:t.f ~tag
            ~decide:(fun verdict ->
              let proc = t.procs.(me) in
              Hashtbl.replace proc.decisions (round, source) verdict;
              try_order t proc)
            ())
    in
    Hashtbl.add t.abba (round, source) instances;
    t.abba_count <- t.abba_count + t.n;
    instances

let maybe_vote t proc =
  (* a round becomes votable once this process is two rounds past it:
     by then every vertex that was broadcast in time is in its DAG *)
  while proc.voted_up_to < proc.round - 2 do
    let r = proc.voted_up_to + 1 in
    for source = 0 to t.n - 1 do
      let instances = abba_for t ~round:r ~source in
      Abba.propose instances.(proc.me)
        (Dag.contains proc.dag { Vertex.round = r; source })
    done;
    proc.voted_up_to <- r
  done

(* ---- DAG construction (Algorithm 2 without weak edges) ---- *)

let broadcast_vertex t proc ~round =
  let strong_edges =
    List.map Vertex.vref_of (Dag.round_vertices proc.dag (round - 1))
  in
  let v =
    { Vertex.round;
      source = proc.me;
      block = t.block ~round ~me:proc.me;
      strong_edges;
      weak_edges = [] }
  in
  Rbc.Bracha.bcast t.rbcs.(proc.me) ~payload:(Vertex.encode v) ~round

let rec try_advance t proc =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let ready, waiting = List.partition (Dag.can_add proc.dag) proc.buffer in
    if ready <> [] then begin
      List.iter (Dag.add proc.dag) ready;
      proc.buffer <- waiting;
      progressed := true
    end
  done;
  (* a newly arrived vertex may unblock the ordering frontier *)
  try_order t proc;
  if Dag.round_size proc.dag proc.round >= (2 * t.f) + 1 then begin
    proc.round <- proc.round + 1;
    broadcast_vertex t proc ~round:proc.round;
    maybe_vote t proc;
    try_advance t proc
  end

let on_r_deliver t proc ~payload ~round ~source =
  match Vertex.decode ~round ~source payload with
  | None -> ()
  | Some v -> (
    match Vertex.validate ~n:t.n ~f:t.f v with
    | Error _ -> ()
    | Ok () ->
      if v.Vertex.weak_edges <> [] then () (* Aleph vertices have none *)
      else if not (Dag.contains proc.dag (Vertex.vref_of v)) then begin
        proc.buffer <- v :: proc.buffer;
        try_advance t proc
      end)

(* ---- construction ---- *)

let create ~engine ~counters ~sched ~coin ~n ~f ~block =
  let procs =
    Array.init n (fun me ->
        { me;
          dag = Dag.create ~n;
          buffer = [];
          round = 0;
          voted_up_to = 0;
          decisions = Hashtbl.create 64;
          next_order = 1;
          log_rev = [];
          delivered = Hashtbl.create 256 })
  in
  let t =
    { engine;
      counters;
      sched;
      coin;
      n;
      f;
      block;
      procs;
      rbcs = [||];
      abba = Hashtbl.create 64;
      abba_count = 0;
      started = false }
  in
  let rbc_net = Net.Network.create ~engine ~sched ~counters ~n in
  t.rbcs <-
    Array.init n (fun me ->
        Rbc.Bracha.create ~net:rbc_net ~me ~f
          ~deliver:(fun ~payload ~round ~source ->
            on_r_deliver t t.procs.(me) ~payload ~round ~source));
  t

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iter
      (fun proc ->
        proc.round <- 1;
        broadcast_vertex t proc ~round:1)
      t.procs
  end

let run t ~until =
  start t;
  ignore (Sim.Engine.run t.engine ~until ())

let delivered_log t i = List.rev t.procs.(i).log_rev

let ordered_rounds t i = t.procs.(i).next_order - 1

let abba_instances_run t = t.abba_count

let check_total_order t =
  let logs =
    Array.to_list (Array.mapi (fun i _ -> (i, Array.of_list (delivered_log t i))) t.procs)
  in
  let _, longest =
    List.fold_left
      (fun ((_, best) as acc) ((_, log) as cand) ->
        if Array.length log > Array.length best then cand else acc)
      (List.hd logs) (List.tl logs)
  in
  let rec check = function
    | [] -> Ok ()
    | (i, log) :: rest ->
      let rec cmp j =
        if j >= Array.length log then check rest
        else if Vertex.vref_of log.(j) <> Vertex.vref_of longest.(j) then
          Error (Printf.sprintf "process %d diverges at %d" i j)
        else cmp (j + 1)
      in
      cmp 0
  in
  check logs
