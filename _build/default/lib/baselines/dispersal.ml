open Rbc.Rbc_intf

type msg =
  | Store of {
      id : string;
      root : string;
      data_len : int;
      frag_index : int;
      frag : string;
      proof : Crypto.Merkle.proof;
    }
  | Stored of { id : string; root : string; data_len : int }
  | Recast_request of { id : string; root : string; data_len : int }
  | Refrag of {
      id : string;
      root : string;
      data_len : int;
      frag_index : int;
      frag : string;
      proof : Crypto.Merkle.proof;
    }

type cert = { id : string; root : string; data_len : int; signers : int list }

let cert_to_string c =
  Printf.sprintf "%s|%s|%d|%s" (Crypto.Sha256.to_hex c.root) c.id c.data_len
    (String.concat "," (List.map string_of_int c.signers))

let cert_of_string s =
  match String.split_on_char '|' s with
  | [ root_hex; id; len; signers ] -> (
    try
      let root =
        if String.length root_hex <> 64 then raise Exit
        else
          String.init 32 (fun i ->
              Char.chr (int_of_string ("0x" ^ String.sub root_hex (2 * i) 2)))
      in
      let signers =
        if signers = "" then []
        else List.map int_of_string (String.split_on_char ',' signers)
      in
      Some { id; root; data_len = int_of_string len; signers }
    with _ -> None)
  | _ -> None

let put_proof buf (proof : Crypto.Merkle.proof) =
  Wire.put_u32 buf proof.Crypto.Merkle.leaf_index;
  Wire.put_u32 buf (List.length proof.Crypto.Merkle.path);
  List.iter (Wire.put_bytes buf) proof.Crypto.Merkle.path

let encode_msg msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Store { id; root; data_len; frag_index; frag; proof } ->
    Wire.put_u8 buf 1;
    Wire.put_bytes buf id;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len;
    Wire.put_u32 buf frag_index;
    Wire.put_bytes buf frag;
    put_proof buf proof
  | Stored { id; root; data_len } ->
    Wire.put_u8 buf 2;
    Wire.put_bytes buf id;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len;
    (* the storage acknowledgement is a signature share *)
    Buffer.add_string buf (String.make 64 '\000')
  | Recast_request { id; root; data_len } ->
    Wire.put_u8 buf 3;
    Wire.put_bytes buf id;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len
  | Refrag { id; root; data_len; frag_index; frag; proof } ->
    Wire.put_u8 buf 4;
    Wire.put_bytes buf id;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len;
    Wire.put_u32 buf frag_index;
    Wire.put_bytes buf frag;
    put_proof buf proof);
  Buffer.contents buf

let msg_bits msg = Wire.bits (encode_msg msg)

type dispersal_state = {
  mutable my_frag : (int * string * Crypto.Merkle.proof) option;
  mutable stored_acks : Iset.t; (* as the disperser: who confirmed *)
  mutable cert_cb : (cert -> unit) option;
  mutable refragged : bool;
  (* [Pending] until enough fragments; [Done payload] afterwards;
     [Unrecoverable] for non-codeword Byzantine dispersals *)
  mutable outcome : outcome;
  frags : (int, string) Hashtbl.t; (* collected refrags *)
}

and outcome = Pending | Done of string | Unrecoverable

(* keyed by (id, root, data_len) so conflicting Byzantine dispersals
   under one id cannot poison each other *)
type key = string * string * int

type t = {
  net : msg Net.Network.t;
  auth : Crypto.Auth.t;
  me : int;
  n : int;
  f : int;
  k : int;
  coder : Crypto.Reed_solomon.coder;
  on_reconstruct : id:string -> payload:string -> unit;
  states : (key, dispersal_state) Hashtbl.t;
}

let state t key =
  match Hashtbl.find_opt t.states key with
  | Some s -> s
  | None ->
    let s =
      { my_frag = None;
        stored_acks = Iset.empty;
        cert_cb = None;
        refragged = false;
        outcome = Pending;
        frags = Hashtbl.create 8 }
    in
    Hashtbl.add t.states key s;
    s

let valid_fragment t ~root ~data_len ~frag ~proof ~frag_index =
  frag_index = proof.Crypto.Merkle.leaf_index
  && String.length frag = Crypto.Reed_solomon.fragment_length t.coder ~data_len
  && Crypto.Merkle.verify ~root ~leaf_count:t.n ~leaf:frag proof

let send_refrag t st ~id ~root ~data_len =
  if not st.refragged then
    match st.my_frag with
    | Some (frag_index, frag, proof) ->
      st.refragged <- true;
      let msg = Refrag { id; root; data_len; frag_index; frag; proof } in
      Net.Network.broadcast t.net ~src:t.me ~kind:"dumbo-refrag"
        ~bits:(msg_bits msg) msg
    | None -> ()

let try_reconstruct t st ~id ~root ~data_len =
  if st.outcome = Pending && Hashtbl.length st.frags >= t.k then begin
    let pieces = Hashtbl.fold (fun i frag acc -> (i, frag) :: acc) st.frags [] in
    match Crypto.Reed_solomon.decode t.coder ~data_len pieces with
    | exception Invalid_argument _ -> ()
    | payload ->
      let re_frags = Crypto.Reed_solomon.encode t.coder payload in
      let tree = Crypto.Merkle.build re_frags in
      if String.equal (Crypto.Merkle.root tree) root then begin
        st.outcome <- Done payload;
        t.on_reconstruct ~id ~payload
      end
      else
        (* non-codeword dispersal: deterministically unrecoverable *)
        st.outcome <- Unrecoverable
  end

let handle t ~src msg =
  match msg with
  | Store { id; root; data_len; frag_index; frag; proof } ->
    if frag_index = t.me && valid_fragment t ~root ~data_len ~frag ~proof ~frag_index
    then begin
      let st = state t (id, root, data_len) in
      if st.my_frag = None then begin
        st.my_frag <- Some (frag_index, frag, proof);
        let msg = Stored { id; root; data_len } in
        Net.Network.send t.net ~src:t.me ~dst:src ~kind:"dumbo-stored"
          ~bits:(msg_bits msg) msg
      end
    end
  | Stored { id; root; data_len } ->
    let st = state t (id, root, data_len) in
    st.stored_acks <- Iset.add src st.stored_acks;
    if Iset.cardinal st.stored_acks >= (2 * t.f) + 1 then begin
      match st.cert_cb with
      | Some cb ->
        st.cert_cb <- None;
        cb { id; root; data_len; signers = Iset.elements st.stored_acks }
      | None -> ()
    end
  | Recast_request { id; root; data_len } ->
    let st = state t (id, root, data_len) in
    send_refrag t st ~id ~root ~data_len
  | Refrag { id; root; data_len; frag_index; frag; proof } ->
    if valid_fragment t ~root ~data_len ~frag ~proof ~frag_index then begin
      let st = state t (id, root, data_len) in
      if not (Hashtbl.mem st.frags frag_index) then
        Hashtbl.add st.frags frag_index frag;
      (* seeing a refrag implies someone requested: join the recast *)
      send_refrag t st ~id ~root ~data_len;
      try_reconstruct t st ~id ~root ~data_len
    end

let create ~net ~auth ~me ~f ~on_reconstruct =
  let n = Net.Network.n net in
  let t =
    { net;
      auth;
      me;
      n;
      f;
      k = f + 1;
      coder = Crypto.Reed_solomon.make ~k:(f + 1) ~n;
      on_reconstruct;
      states = Hashtbl.create 32 }
  in
  Net.Network.register net me (fun ~src msg -> handle t ~src msg);
  t

let disperse t ~id ~payload ~on_cert =
  let frags = Crypto.Reed_solomon.encode t.coder payload in
  let data_len = String.length payload in
  let tree = Crypto.Merkle.build frags in
  let root = Crypto.Merkle.root tree in
  let st = state t (id, root, data_len) in
  st.cert_cb <- Some on_cert;
  Array.iteri
    (fun i frag ->
      let proof = Crypto.Merkle.prove tree i in
      let msg = Store { id; root; data_len; frag_index = i; frag; proof } in
      Net.Network.send t.net ~src:t.me ~dst:i ~kind:"dumbo-store"
        ~bits:(msg_bits msg) msg)
    frags

let recast t (cert : cert) =
  let st = state t (cert.id, cert.root, cert.data_len) in
  match st.outcome with
  | Done payload ->
    (* already reconstructed (e.g. refrags raced ahead of the caller's
       own agreement output): deliver again for this caller *)
    t.on_reconstruct ~id:cert.id ~payload
  | Unrecoverable -> ()
  | Pending ->
    let msg =
      Recast_request { id = cert.id; root = cert.root; data_len = cert.data_len }
    in
    Net.Network.broadcast t.net ~src:t.me ~kind:"dumbo-recast"
      ~bits:(msg_bits msg) msg;
    send_refrag t st ~id:cert.id ~root:cert.root ~data_len:cert.data_len;
    try_reconstruct t st ~id:cert.id ~root:cert.root ~data_len:cert.data_len
