(** Asynchronous provable dispersal with deferred recast — the APDB
    building block of Dumbo-MVBA (Lu, Lu, Tang, Wang, PODC 2020).

    Unlike AVID-as-broadcast (which reconstructs eagerly), Dumbo first
    {e disperses} every party's batch and only {e recasts} the single
    batch whose dispersal certificate wins the MVBA:

    + [disperse]: Reed–Solomon encode ([k = f+1]), Merkle-commit, send
      each party its fragment ([Store]); parties holding a valid
      fragment answer [Stored] (a signature share). [2f+1] [Stored]s
      form the {e dispersal certificate} — constant-size evidence that
      enough correct parties hold fragments for reconstruction.
    + [recast cert]: broadcast a request; every party holding a
      fragment for that dispersal broadcasts it once ([Refrag]); any
      [f+1] valid fragments reconstruct, with the same re-encoding
      root-check as AVID.

    Certificates serialize to strings so they can ride through VABA as
    constant-size proposals. *)

type msg

type cert = {
  id : string;      (** dispersal identifier, e.g. ["slot:proposer"] *)
  root : string;    (** Merkle root over the fragment vector *)
  data_len : int;
  signers : int list;
}

val cert_to_string : cert -> string
val cert_of_string : string -> cert option

type t

val create :
  net:msg Net.Network.t ->
  auth:Crypto.Auth.t ->
  me:int ->
  f:int ->
  on_reconstruct:(id:string -> payload:string -> unit) ->
  t

val disperse : t -> id:string -> payload:string -> on_cert:(cert -> unit) -> unit
(** Start a dispersal; [on_cert] fires once when 2f+1 parties confirmed
    storage. *)

val recast : t -> cert -> unit
(** Trigger reconstruction of a certified dispersal; every party's
    [on_reconstruct] eventually fires with the payload (or never, if the
    certificate is a Byzantine forgery for a non-codeword — all correct
    parties then agree to skip it). *)
