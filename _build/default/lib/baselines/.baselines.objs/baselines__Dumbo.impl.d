lib/baselines/dumbo.ml: Dispersal Printf String Vaba
