lib/baselines/aleph.mli: Crypto Dagrider Metrics Net Sim
