lib/baselines/dispersal.mli: Crypto Net
