lib/baselines/smr.ml: Crypto Dumbo Hashtbl List Metrics Net Sim Vaba
