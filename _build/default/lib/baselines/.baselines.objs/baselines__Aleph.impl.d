lib/baselines/aleph.ml: Abba Array Crypto Dagrider Hashtbl List Metrics Net Option Printf Rbc Sim
