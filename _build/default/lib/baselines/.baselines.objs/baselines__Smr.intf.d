lib/baselines/smr.mli: Crypto Metrics Net Sim
