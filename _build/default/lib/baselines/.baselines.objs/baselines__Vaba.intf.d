lib/baselines/vaba.mli: Crypto Net
