lib/baselines/abba.mli: Crypto Net
