lib/baselines/dispersal.ml: Array Buffer Char Crypto Hashtbl Iset List Net Printf Rbc String Wire
