lib/baselines/vaba.ml: Buffer Crypto Hashtbl Iset List Net Rbc String Wire
