lib/baselines/dumbo.mli: Crypto Dispersal Net Vaba
