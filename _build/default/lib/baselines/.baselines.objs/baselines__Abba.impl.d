lib/baselines/abba.ml: Buffer Crypto Hashtbl Iset List Net Rbc Wire
