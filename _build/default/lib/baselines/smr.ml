type protocol = Vaba_smr | Dumbo_smr

type t = {
  engine : Sim.Engine.t;
  counters : Metrics.Counters.t;
  sched : Net.Sched.t;
  auth : Crypto.Auth.t;
  coin : Crypto.Threshold_coin.t;
  protocol : protocol;
  n : int;
  f : int;
  concurrency : int;
  total_slots : int;
  batch : slot:int -> me:int -> string;
  on_output : slot:int -> value:string -> time:float -> unit;
  decisions : (int, string) Hashtbl.t;
  mutable next_to_open : int;
  mutable next_to_output : int;
  mutable started : bool;
}

let create ~engine ~counters ~sched ~auth ~coin ~protocol ~n ~f ~concurrency
    ~total_slots ~batch ~on_output () =
  if concurrency < 1 then invalid_arg "Smr.create: concurrency < 1";
  { engine;
    counters;
    sched;
    auth;
    coin;
    protocol;
    n;
    f;
    concurrency;
    total_slots;
    batch;
    on_output;
    decisions = Hashtbl.create 64;
    next_to_open = 0;
    next_to_output = 0;
    started = false }

let rec flush_outputs t =
  match Hashtbl.find_opt t.decisions t.next_to_output with
  | Some value ->
    let slot = t.next_to_output in
    t.next_to_output <- slot + 1;
    t.on_output ~slot ~value ~time:(Sim.Engine.now t.engine);
    flush_outputs t
  | None -> ()

let rec open_slot t slot =
  if slot < t.total_slots then begin
    let on_decide value =
      if not (Hashtbl.mem t.decisions slot) then begin
        Hashtbl.add t.decisions slot value;
        flush_outputs t;
        open_next t
      end
    in
    (match t.protocol with
    | Vaba_smr ->
      let net =
        Net.Network.create ~engine:t.engine ~sched:t.sched ~counters:t.counters
          ~n:t.n
      in
      let instances =
        List.init t.n (fun me ->
            Vaba.create ~net ~auth:t.auth ~coin:t.coin ~me ~f:t.f ~tag:slot
              ~proposal:(fun ~me -> t.batch ~slot ~me)
              ~decide:(fun ~value ~view:_ -> on_decide value)
              ())
      in
      List.iter Vaba.start instances
    | Dumbo_smr ->
      let disp_net =
        Net.Network.create ~engine:t.engine ~sched:t.sched ~counters:t.counters
          ~n:t.n
      in
      let vaba_net =
        Net.Network.create ~engine:t.engine ~sched:t.sched ~counters:t.counters
          ~n:t.n
      in
      let instances =
        List.init t.n (fun me ->
            Dumbo.create ~disp_net ~vaba_net ~auth:t.auth ~coin:t.coin ~me
              ~f:t.f ~tag:slot
              ~batch:(t.batch ~slot ~me)
              ~decide:(fun ~batch -> on_decide batch)
              ())
      in
      List.iter Dumbo.start instances)
  end

and open_next t =
  (* keep [concurrency] slots in flight past the output frontier *)
  while
    t.next_to_open < t.total_slots
    && t.next_to_open < t.next_to_output + t.concurrency
  do
    let slot = t.next_to_open in
    t.next_to_open <- slot + 1;
    open_slot t slot
  done

let start t =
  if not t.started then begin
    t.started <- true;
    open_next t
  end

let output_count t = t.next_to_output

let decided_value t slot = Hashtbl.find_opt t.decisions slot
