(** Asynchronous binary Byzantine agreement, signature-free
    (Mostéfaoui, Moumen, Raynal, PODC 2014 / JACM 2015) — the building
    block the paper's §7 credits Aleph [24] with using ("a more
    efficient binary agreement protocol [13]"); we implement the
    modern signature-free variant with the same interface.

    Per internal round [r], starting from an estimate [est]:
    + {b BV-broadcast}: broadcast [Bval (r, est)]. On [f+1] [Bval]s for
      a value [v] from distinct senders, relay [Bval (r, v)] (once per
      value) — so a value backed by at least one correct process spreads
      to all. On [2f+1] [Bval]s, [v] joins [bin_values_r]: a value in
      any correct process's [bin_values] was proposed by a correct
      process (no Byzantine-only values survive).
    + {b AUX}: once [bin_values_r] is non-empty, broadcast the first
      such value. Wait for [2f+1] [Aux] messages carrying values that
      are in our [bin_values_r]; call the set of carried values [vals].
    + {b coin}: flip the common coin for round [r]. If
      [vals = {v}] and [v] equals the coin, decide [v]; if [vals = {v}]
      otherwise, set [est := v]; if [vals = {0, 1}], set [est := coin].

    Expected O(1) rounds (each round decides with probability >= 1/2
    once estimates converge); O(n^2) messages of O(1) bits per round.
    A decided process keeps answering [Bval]/[Aux] for later rounds so
    that stragglers' rounds complete (natural quiescence once everyone
    has decided — rounds only advance on message receipt). *)

type msg

val encode_msg : msg -> string
(** Canonical wire encoding (5–6 bytes per message — binary agreement's
    costs are in message {e counts}, not sizes); senders charge exactly
    its size. *)

type t

val create :
  net:msg Net.Network.t ->
  coin:Crypto.Threshold_coin.t ->
  me:int ->
  f:int ->
  tag:int ->
  decide:(bool -> unit) ->
  unit ->
  t
(** [tag] domain-separates coin instances across concurrent ABBA
    instances sharing one coin (Aleph runs n per DAG round). *)

val propose : t -> bool -> unit
(** Start with this binary input. At most one call per instance. *)

val decided : t -> bool option

val rounds_used : t -> int
(** Internal rounds advanced so far (complexity measurements). *)
