(** State machine replication from single-shot consensus — the "VABA
    SMR" / "Dumbo SMR" constructions of Table 1.

    The paper (§1) compares DAG-Rider against SMRs that "run an
    unbounded sequence of the VABA or Dumbo protocols to independently
    agree on every slot", allowing up to [n] slots to run concurrently
    but requiring slot decisions to be {e output in sequential order}
    (no gaps). The in-order constraint is what produces the O(log n)
    expected time to clear n slots (the max of n geometric view counts;
    Ben-Or & El-Yaniv): one slow slot holds up every later one.

    Each slot gets fresh networks over the shared engine/scheduler/
    counters, so the bit accounting covers the whole SMR. *)

type protocol = Vaba_smr | Dumbo_smr

type t

val create :
  engine:Sim.Engine.t ->
  counters:Metrics.Counters.t ->
  sched:Net.Sched.t ->
  auth:Crypto.Auth.t ->
  coin:Crypto.Threshold_coin.t ->
  protocol:protocol ->
  n:int ->
  f:int ->
  concurrency:int ->
  total_slots:int ->
  batch:(slot:int -> me:int -> string) ->
  on_output:(slot:int -> value:string -> time:float -> unit) ->
  unit ->
  t
(** [batch] supplies party [me]'s proposal for a slot. [on_output] fires
    for each slot {e in slot order} (the SMR's execution feed), stamped
    with the virtual time the slot became deliverable. The driver stops
    opening slots after [total_slots]. *)

val start : t -> unit

val output_count : t -> int
(** Slots output in order so far. *)

val decided_value : t -> int -> string option
(** Decision of a slot (possibly not yet output if a predecessor slot is
    still running). *)
