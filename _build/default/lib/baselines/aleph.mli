(** A compact Aleph-style atomic broadcast (Gągol, Leśniak, Straszak,
    Świętek, AFT 2019) — the closest prior DAG protocol the paper
    compares against in §7.

    Like DAG-Rider, processes build a round-structured DAG over reliable
    broadcast. Unlike DAG-Rider, the ordering layer runs a {e binary
    agreement per vertex}: once a process is two rounds past round [r],
    it proposes, for every slot [(r, p)], whether that vertex is in its
    local DAG ({!Abba}). A round is ordered when all [n] of its
    instances decide; the vertices decided "in" are delivered (with
    their causal histories) in source order, and vertices decided "out"
    are only ever delivered if some later included vertex reaches them.

    The two §7 contrasts this reproduces measurably:
    + {b no validity}: there are no weak edges, so a slow process's
      vertices — absent from others' DAGs at voting time — are decided
      out {e and} unreachable from later vertices: they are never
      ordered (DAG-Rider's weak edges exist precisely to prevent this);
    + {b cost}: n binary agreements per round, each O(n^2) messages,
      with no amortization across decisions.

    The driver owns all [n] processes (each binary-agreement instance
    needs its own broadcast channel, created on demand), mirroring how
    {!Smr} hosts the slot protocols. *)

type t

val create :
  engine:Sim.Engine.t ->
  counters:Metrics.Counters.t ->
  sched:Net.Sched.t ->
  coin:Crypto.Threshold_coin.t ->
  n:int ->
  f:int ->
  block:(round:int -> me:int -> string) ->
  t

val start : t -> unit

val run : t -> until:float -> unit

val delivered_log : t -> int -> Dagrider.Vertex.t list
(** Process [i]'s totally ordered output so far. *)

val check_total_order : t -> (unit, string) result
(** All processes' logs must be prefix-comparable. *)

val ordered_rounds : t -> int -> int
(** Rounds fully ordered at process [i]. *)

val abba_instances_run : t -> int
(** Binary-agreement instances created so far (cost accounting). *)
