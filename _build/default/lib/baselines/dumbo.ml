type t = {
  mutable dispersal : Dispersal.t option;
  mutable vaba : Vaba.t option;
  me : int;
  tag : int;
  batch : string;
  decide_cb : batch:string -> unit;
  mutable my_cert : Dispersal.cert option;
  mutable winning_cert : Dispersal.cert option;
  mutable decided : string option;
  mutable started : bool;
}

let dispersal_id ~tag ~me = Printf.sprintf "%d:%d" tag me

let on_reconstruct t ~id ~payload =
  match (t.decided, t.winning_cert) with
  | None, Some cert when String.equal cert.Dispersal.id id ->
    t.decided <- Some payload;
    t.decide_cb ~batch:payload
  | _ -> ()

let on_vaba_decide t ~value ~view:_ =
  match (Dispersal.cert_of_string value, t.dispersal) with
  | Some cert, Some dispersal ->
    t.winning_cert <- Some cert;
    Dispersal.recast dispersal cert
  | _ -> () (* unreachable: VABA's validity predicate rejects non-certs *)

let create ~disp_net ~vaba_net ~auth ~coin ~me ~f ~tag ~batch ~decide () =
  let t =
    { dispersal = None;
      vaba = None;
      me;
      tag;
      batch;
      decide_cb = decide;
      my_cert = None;
      winning_cert = None;
      decided = None;
      started = false }
  in
  t.dispersal <-
    Some
      (Dispersal.create ~net:disp_net ~auth ~me ~f
         ~on_reconstruct:(fun ~id ~payload -> on_reconstruct t ~id ~payload));
  t.vaba <-
    Some
      (Vaba.create ~net:vaba_net ~auth ~coin ~me ~f ~tag
         ~valid:(fun v -> Dispersal.cert_of_string v <> None)
         ~proposal:(fun ~me:_ ->
           match t.my_cert with
           | Some cert -> Dispersal.cert_to_string cert
           | None -> "")
         ~decide:(fun ~value ~view -> on_vaba_decide t ~value ~view)
         ());
  t

let start t =
  if not t.started then begin
    t.started <- true;
    match t.dispersal with
    | None -> ()
    | Some dispersal ->
      Dispersal.disperse dispersal ~id:(dispersal_id ~tag:t.tag ~me:t.me)
        ~payload:t.batch
        ~on_cert:(fun cert ->
          t.my_cert <- Some cert;
          match t.vaba with
          | Some v -> Vaba.start v
          | None -> ())
  end

let decided t = t.decided
