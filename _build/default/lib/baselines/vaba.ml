open Rbc.Rbc_intf

type msg =
  | Stage of { view : int; stage : int; promoter : int; value : string }
  | Ack of { view : int; stage : int; promoter : int }
  | Done of { view : int; promoter : int }
  | Coin_share of { view : int; share : Crypto.Threshold_coin.share }
  | View_change of {
      view : int;
      leader : int;
      stage_seen : int; (* 0 = nothing seen *)
      value : string option;
    }
  | Decide of { value : string; view : int }

(* Wire codec: quorum certificates attached to stage >= 2 / done /
   decide messages are encoded as 2f+1 64-byte signature placeholders
   (the size a BLS multisig bundle would occupy); everything else is the
   actual content. Senders charge the exact encoded size. *)

let cert_placeholder_bytes = 64

let encode_msg ~quorum msg =
  let buf = Buffer.create 64 in
  let put_cert () =
    Buffer.add_string buf (String.make (quorum * cert_placeholder_bytes) '\000')
  in
  (match msg with
  | Stage { view; stage; promoter; value } ->
    Wire.put_u8 buf 1;
    Wire.put_u32 buf view;
    Wire.put_u8 buf stage;
    Wire.put_u32 buf promoter;
    Wire.put_bytes buf value;
    if stage > 1 then put_cert ()
  | Ack { view; stage; promoter } ->
    Wire.put_u8 buf 2;
    Wire.put_u32 buf view;
    Wire.put_u8 buf stage;
    Wire.put_u32 buf promoter;
    (* the ack is itself a signature share *)
    Buffer.add_string buf (String.make cert_placeholder_bytes '\000')
  | Done { view; promoter } ->
    Wire.put_u8 buf 3;
    Wire.put_u32 buf view;
    Wire.put_u32 buf promoter;
    put_cert ()
  | Coin_share { view; share } ->
    Wire.put_u8 buf 4;
    Wire.put_u32 buf view;
    Wire.put_u32 buf share.Crypto.Threshold_coin.holder;
    Wire.put_u32 buf share.Crypto.Threshold_coin.instance;
    Wire.put_u32 buf share.Crypto.Threshold_coin.value
  | View_change { view; leader; stage_seen; value } ->
    Wire.put_u8 buf 5;
    Wire.put_u32 buf view;
    Wire.put_u32 buf leader;
    Wire.put_u8 buf stage_seen;
    (match value with
    | None -> Wire.put_bool buf false
    | Some v ->
      Wire.put_bool buf true;
      Wire.put_bytes buf v;
      put_cert ())
  | Decide { value; view } ->
    Wire.put_u8 buf 6;
    Wire.put_u32 buf view;
    Wire.put_bytes buf value;
    put_cert ());
  Buffer.contents buf

(* What party i remembers about view v. *)
type view_state = {
  mutable my_value : string;
  mutable my_stage : int; (* stage currently collecting acks for; 0 = not started *)
  mutable acks : Iset.t; (* acks for my current stage *)
  (* promoter -> (highest stage acked, its value): our key/lock/commit
     memory, reported at view change *)
  promotions : (int, int * string) Hashtbl.t;
  mutable dones : Iset.t;
  mutable shares : Crypto.Threshold_coin.share list;
  mutable share_sent : bool;
  mutable leader : int option;
  mutable vc_sent : bool;
  mutable vc_reports : (int * int * string option) list; (* reporter, stage, value *)
  mutable vc_resolved : bool;
  mutable adopted : bool; (* my_value was adopted from a leader: keep it *)
}

type t = {
  net : msg Net.Network.t;
  auth : Crypto.Auth.t;
  coin : Crypto.Threshold_coin.t;
  me : int;
  n : int;
  f : int;
  tag : int;
  proposal : me:int -> string;
  valid : string -> bool;
  decide_cb : value:string -> view:int -> unit;
  views : (int, view_state) Hashtbl.t;
  mutable current_view : int;
  mutable decided : string option;
  mutable started : bool;
}

let quorum t = (2 * t.f) + 1

let coin_instance t ~view = (t.tag * 1_000_003) + view

let fresh_view_state value =
  { my_value = value;
    my_stage = 0;
    acks = Iset.empty;
    promotions = Hashtbl.create 8;
    dones = Iset.empty;
    shares = [];
    share_sent = false;
    leader = None;
    vc_sent = false;
    vc_reports = [];
    vc_resolved = false;
    adopted = false }

let view_state t view =
  match Hashtbl.find_opt t.views view with
  | Some vs -> vs
  | None ->
    (* created on demand: messages for future views arrive early; the
       proposal is overwritten with the adopted value when we enter it *)
    let vs = fresh_view_state (t.proposal ~me:t.me) in
    Hashtbl.add t.views view vs;
    vs

let broadcast_stage t vs ~view ~stage =
  vs.my_stage <- stage;
  vs.acks <- Iset.empty;
  let msg = Stage { view; stage; promoter = t.me; value = vs.my_value } in
  Net.Network.broadcast t.net ~src:t.me ~kind:"vaba-stage"
    ~bits:(Wire.bits (encode_msg ~quorum:(quorum t) msg))
    msg

let enter_view t view =
  if t.decided = None then begin
    t.current_view <- view;
    let vs = view_state t view in
    if vs.my_stage = 0 then begin
      (* the proposal may have changed since this view's state was
         created on demand (e.g. Dumbo's certificate arriving late);
         adopted values take precedence *)
      if not vs.adopted then vs.my_value <- t.proposal ~me:t.me;
      broadcast_stage t vs ~view ~stage:1
    end
  end

let do_decide t ~value ~view =
  if t.decided = None then begin
    t.decided <- Some value;
    let msg = Decide { value; view } in
    Net.Network.broadcast t.net ~src:t.me ~kind:"vaba-decide"
      ~bits:(Wire.bits (encode_msg ~quorum:(quorum t) msg))
      msg;
    t.decide_cb ~value ~view
  end

let resolve_view_change t vs ~view =
  if (not vs.vc_resolved) && List.length vs.vc_reports >= quorum t then begin
    vs.vc_resolved <- true;
    let best =
      List.fold_left
        (fun acc (_, stage, value) ->
          match (acc, value) with
          | Some (bs, _), Some v when stage > bs -> Some (stage, v)
          | None, Some v when stage > 0 -> Some (stage, v)
          | _ -> acc)
        None vs.vc_reports
    in
    (match best with
    | Some (stage, value) when stage >= 4 -> do_decide t ~value ~view
    | Some (stage, value) when stage >= 2 ->
      (* adopt the leader's value for the next view (key/lock seen) *)
      let next = view_state t (view + 1) in
      if next.my_stage = 0 then begin
        next.my_value <- value;
        next.adopted <- true
      end
    | Some _ | None -> ());
    if t.decided = None then enter_view t (view + 1)
  end

let try_elect t vs ~view =
  if vs.leader = None then begin
    match
      Crypto.Threshold_coin.combine t.coin ~instance:(coin_instance t ~view)
        vs.shares
    with
    | None -> ()
    | Some leader ->
      vs.leader <- Some leader;
      if not vs.vc_sent then begin
        vs.vc_sent <- true;
        let stage_seen, value =
          match Hashtbl.find_opt vs.promotions leader with
          | Some (s, v) -> (s, Some v)
          | None -> (0, None)
        in
        let msg = View_change { view; leader; stage_seen; value } in
        Net.Network.broadcast t.net ~src:t.me ~kind:"vaba-viewchange"
          ~bits:(Wire.bits (encode_msg ~quorum:(quorum t) msg))
          msg
      end
  end

let handle t ~src msg =
  if t.decided = None then
    match msg with
    | Stage { view; stage; promoter; value } when view >= t.current_view ->
      let vs = view_state t view in
      (* remember the highest stage we acknowledge per promoter *)
      let known =
        match Hashtbl.find_opt vs.promotions promoter with
        | Some (s, _) -> s
        | None -> 0
      in
      if stage > known && t.valid value then begin
        Hashtbl.replace vs.promotions promoter (stage, value);
        let msg = Ack { view; stage; promoter } in
        Net.Network.send t.net ~src:t.me ~dst:promoter ~kind:"vaba-ack"
          ~bits:(Wire.bits (encode_msg ~quorum:(quorum t) msg))
          msg
      end
    | Stage _ -> ()
    | Ack { view; stage; promoter } when promoter = t.me ->
      let vs = view_state t view in
      if stage = vs.my_stage then begin
        vs.acks <- Iset.add src vs.acks;
        if Iset.cardinal vs.acks >= quorum t then
          if stage < 4 then broadcast_stage t vs ~view ~stage:(stage + 1)
          else begin
            vs.my_stage <- 5;
            let msg = Done { view; promoter = t.me } in
            Net.Network.broadcast t.net ~src:t.me ~kind:"vaba-done"
              ~bits:(Wire.bits (encode_msg ~quorum:(quorum t) msg))
              msg
          end
      end
    | Ack _ -> ()
    | Done { view; promoter } ->
      let vs = view_state t view in
      vs.dones <- Iset.add promoter vs.dones;
      if Iset.cardinal vs.dones >= quorum t && not vs.share_sent then begin
        vs.share_sent <- true;
        (* the coin is flipped only after 2f+1 promotions completed *)
        let share =
          Crypto.Threshold_coin.make_share t.coin ~holder:t.me
            ~instance:(coin_instance t ~view)
        in
        let msg = Coin_share { view; share } in
        Net.Network.broadcast t.net ~src:t.me ~kind:"vaba-coin"
          ~bits:(Wire.bits (encode_msg ~quorum:(quorum t) msg))
          msg
      end
    | Coin_share { view; share } ->
      let vs = view_state t view in
      if Crypto.Threshold_coin.verify_share t.coin share then begin
        vs.shares <- share :: vs.shares;
        try_elect t vs ~view
      end
    | View_change { view; leader = _; stage_seen; value } ->
      let vs = view_state t view in
      vs.vc_reports <- (src, stage_seen, value) :: vs.vc_reports;
      resolve_view_change t vs ~view
    | Decide { value; view } -> do_decide t ~value ~view

let create ~net ~auth ~coin ~me ~f ~tag ?(valid = fun _ -> true) ~proposal ~decide () =
  let n = Net.Network.n net in
  let t =
    { net;
      auth;
      coin;
      me;
      n;
      f;
      tag;
      proposal;
      valid;
      decide_cb = decide;
      views = Hashtbl.create 8;
      current_view = 1;
      decided = None;
      started = false }
  in
  Net.Network.register net me (fun ~src msg -> handle t ~src msg);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    enter_view t 1
  end

let decided t = t.decided

let view t = t.current_view
