lib/sim/engine.ml: Stdx
