lib/sim/engine.mli:
