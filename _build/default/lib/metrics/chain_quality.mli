(** Chain-quality auditing (paper §3).

    DAG-Rider guarantees that in every prefix of the ordered output of
    size [(2f+1) * r], at least [(f+1) * r] entries were broadcast by
    correct processes. The auditor takes the ordered log of sources and
    the set of correct processes and checks the guarantee on every
    prefix, reporting the worst prefix found. *)

type report = {
  total : int;                 (** entries audited *)
  correct_entries : int;       (** entries from correct sources *)
  worst_prefix_len : int;      (** prefix with the lowest correct ratio *)
  worst_prefix_ratio : float;  (** that ratio *)
  holds : bool;                (** the (f+1)/(2f+1)-per-prefix bound *)
}

val audit : f:int -> correct:(int -> bool) -> sources:int list -> report
(** [audit ~f ~correct ~sources] checks the log whose i-th ordered entry
    came from [List.nth sources i]. The bound is evaluated, per the
    paper, on prefixes whose length is a multiple of [2f + 1]. *)

val ratio_of_correct : correct:(int -> bool) -> sources:int list -> float
(** Fraction of the whole log from correct sources; 0 on an empty log. *)
