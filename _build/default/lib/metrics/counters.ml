type t = {
  by_kind : (string, int ref) Hashtbl.t;
  by_sender : (int, int ref) Hashtbl.t;
  mutable messages : int;
  mutable bits : int;
}

let create () =
  { by_kind = Hashtbl.create 32;
    by_sender = Hashtbl.create 32;
    messages = 0;
    bits = 0 }

let bump table key amount =
  match Hashtbl.find_opt table key with
  | Some r -> r := !r + amount
  | None -> Hashtbl.add table key (ref amount)

let record_send t ~src ~kind ~bits =
  t.messages <- t.messages + 1;
  t.bits <- t.bits + bits;
  bump t.by_kind kind bits;
  bump t.by_sender src bits

let total_bits t = t.bits

let total_bits_from t ~senders =
  Hashtbl.fold
    (fun src r acc -> if senders src then acc + !r else acc)
    t.by_sender 0

let total_messages t = t.messages

let bits_by_kind t =
  let items =
    Hashtbl.fold (fun kind r acc -> (kind, !r) :: acc) t.by_kind []
  in
  List.sort (fun (_, a) (_, b) -> compare b a) items

let reset t =
  Hashtbl.reset t.by_kind;
  Hashtbl.reset t.by_sender;
  t.messages <- 0;
  t.bits <- 0
