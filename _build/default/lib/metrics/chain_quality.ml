type report = {
  total : int;
  correct_entries : int;
  worst_prefix_len : int;
  worst_prefix_ratio : float;
  holds : bool;
}

let audit ~f ~correct ~sources =
  let quorum = (2 * f) + 1 in
  let need_per_quorum = f + 1 in
  let total = List.length sources in
  let correct_entries =
    List.length (List.filter correct sources)
  in
  let holds = ref true in
  let worst_len = ref 0 and worst_ratio = ref 1.0 in
  let seen = ref 0 and seen_correct = ref 0 in
  List.iter
    (fun src ->
      incr seen;
      if correct src then incr seen_correct;
      if !seen mod quorum = 0 then begin
        let r = !seen / quorum in
        let ratio = float_of_int !seen_correct /. float_of_int !seen in
        if ratio < !worst_ratio then begin
          worst_ratio := ratio;
          worst_len := !seen
        end;
        if !seen_correct < need_per_quorum * r then holds := false
      end)
    sources;
  { total;
    correct_entries;
    worst_prefix_len = !worst_len;
    worst_prefix_ratio = (if !worst_len = 0 then 1.0 else !worst_ratio);
    holds = !holds }

let ratio_of_correct ~correct ~sources =
  match sources with
  | [] -> 0.0
  | _ ->
    let total = List.length sources in
    let good = List.length (List.filter correct sources) in
    float_of_int good /. float_of_int total
