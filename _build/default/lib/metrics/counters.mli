(** Communication accounting.

    The paper measures communication complexity as the total number of
    bits sent by {e honest} processes to order a single transaction
    (§3). The network layer reports every send here, tagged with the
    message kind (e.g. ["bracha-echo"], ["avid-fragment"], ["coin-share"])
    so experiments can break totals down by protocol phase. *)

type t

val create : unit -> t

val record_send : t -> src:int -> kind:string -> bits:int -> unit

val total_bits : t -> int
(** All bits sent, all senders. *)

val total_bits_from : t -> senders:(int -> bool) -> int
(** Bits sent by processes selected by the predicate (used to restrict
    accounting to honest processes, per the paper's definition). *)

val total_messages : t -> int

val bits_by_kind : t -> (string * int) list
(** Per-kind totals, sorted descending by bits. *)

val reset : t -> unit
