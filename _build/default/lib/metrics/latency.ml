type key = string

type record = {
  proposed_at : float;
  mutable first_delivery : float option;
  mutable deliverers : int list;
}

type t = { records : (key, record) Hashtbl.t }

let create () = { records = Hashtbl.create 64 }

let proposed t key ~now =
  if not (Hashtbl.mem t.records key) then
    Hashtbl.add t.records key
      { proposed_at = now; first_delivery = None; deliverers = [] }

let delivered t key ~process ~now =
  match Hashtbl.find_opt t.records key with
  | None -> ()
  | Some r ->
    if not (List.mem process r.deliverers) then
      r.deliverers <- process :: r.deliverers;
    (match r.first_delivery with
    | Some earlier when earlier <= now -> ()
    | _ -> r.first_delivery <- Some now)

let first_delivery_latency t key =
  match Hashtbl.find_opt t.records key with
  | None -> None
  | Some r ->
    Option.map (fun d -> d -. r.proposed_at) r.first_delivery

let all_first_delivery_latencies t =
  Hashtbl.fold
    (fun _ r acc ->
      match r.first_delivery with
      | Some d -> (d -. r.proposed_at) :: acc
      | None -> acc)
    t.records []

let undelivered t =
  Hashtbl.fold
    (fun key r acc -> if r.first_delivery = None then key :: acc else acc)
    t.records []

let delivery_count t key =
  match Hashtbl.find_opt t.records key with
  | None -> 0
  | Some r -> List.length r.deliverers
