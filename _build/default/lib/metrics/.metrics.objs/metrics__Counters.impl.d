lib/metrics/counters.ml: Hashtbl List
