lib/metrics/latency.ml: Hashtbl List Option
