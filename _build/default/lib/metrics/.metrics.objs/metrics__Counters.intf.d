lib/metrics/counters.mli:
