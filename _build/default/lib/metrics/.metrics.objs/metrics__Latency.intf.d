lib/metrics/latency.mli:
