lib/metrics/chain_quality.mli:
