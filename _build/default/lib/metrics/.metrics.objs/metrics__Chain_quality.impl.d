lib/metrics/chain_quality.ml: List
