lib/net/sched.mli: Stdx
