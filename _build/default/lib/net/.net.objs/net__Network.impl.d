lib/net/network.ml: Array Metrics Sched Sim
