lib/net/network.mli: Metrics Sched Sim
