lib/net/sched.ml: Float Printf Stdx
