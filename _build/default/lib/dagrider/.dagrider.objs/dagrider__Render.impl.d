lib/dagrider/render.ml: Buffer Dag List Ordering Printf Vertex
