lib/dagrider/dag.mli: Vertex
