lib/dagrider/dag.ml: Hashtbl List Queue Vertex
