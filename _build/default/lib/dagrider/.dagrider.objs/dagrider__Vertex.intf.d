lib/dagrider/vertex.mli: Format
