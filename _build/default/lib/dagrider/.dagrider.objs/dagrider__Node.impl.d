lib/dagrider/node.ml: Char Crypto Dag Hashtbl List Net Ordering Queue Rbc String Vertex
