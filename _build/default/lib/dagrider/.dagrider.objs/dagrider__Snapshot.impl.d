lib/dagrider/snapshot.ml: Buffer Char Crypto Dag List Printf Result String Vertex
