lib/dagrider/ordering.ml: Dag Hashtbl List Vertex
