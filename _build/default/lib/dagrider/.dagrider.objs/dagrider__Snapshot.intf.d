lib/dagrider/snapshot.mli: Dag Vertex
