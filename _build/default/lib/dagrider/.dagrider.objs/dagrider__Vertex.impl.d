lib/dagrider/vertex.ml: Buffer Char Crypto Format List Option Printf String
