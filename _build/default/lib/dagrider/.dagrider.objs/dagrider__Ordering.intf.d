lib/dagrider/ordering.mli: Dag Vertex
