lib/dagrider/render.mli: Dag Vertex
