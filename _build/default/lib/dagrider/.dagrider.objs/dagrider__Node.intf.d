lib/dagrider/node.mli: Crypto Dag Net Ordering Rbc Vertex
