(** DAG vertices and their wire codec (paper Algorithm 1).

    A vertex carries a block of transactions, at least [2f+1] strong
    edges to round [r-1] vertices, and weak edges to older vertices not
    otherwise reachable. Per the paper's footnote 2, edges reference
    vertices by [(round, source)] rather than by value — reliable
    broadcast guarantees at most one vertex per (round, source), so the
    reference is unambiguous.

    [round] and [source] of a delivered vertex are taken from the
    reliable-broadcast layer (Algorithm 2 lines 23–24), not from the
    attacker-controlled payload; the codec therefore serializes only the
    block and the edge lists. *)

type vref = { round : int; source : int }
(** Reference to a vertex. *)

type t = {
  round : int;
  source : int;
  block : string; (* opaque transaction batch; see Workload *)
  strong_edges : vref list;
  weak_edges : vref list;
}

val vref_of : t -> vref

val compare_vref : vref -> vref -> int
(** Round-major, then source — the deterministic order used when
    delivering a leader's causal history. *)

val encode : t -> string
(** Serialize [block]/[strong_edges]/[weak_edges] (length-prefixed
    binary). [round] and [source] travel in the broadcast envelope. *)

val decode : round:int -> source:int -> string -> t option
(** Parse a payload delivered by reliable broadcast, attaching the
    envelope's round and source. [None] on malformed bytes (Byzantine
    senders can put anything in a payload). *)

val validate : n:int -> f:int -> t -> (unit, string) result
(** Structural checks from Algorithm 2 line 25 plus edge sanity:
    [round >= 1]; at least [2f+1] strong edges, all to round [round-1];
    weak edges to rounds in [\[1, round-2\]]; all edge sources in
    [\[0, n)]; no duplicate edge targets; no weak edge duplicating a
    strong edge. Returns a reason on failure so tests can assert which
    rule rejected a crafted vertex. *)

val digest : t -> string
(** SHA-256 over the canonical encoding plus envelope, used as payload
    identity in metrics and examples. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering like [v(r=3,p=1,|b|=120,s=4,w=1)]. *)
