(** The zero-communication ordering layer (paper §5, Algorithm 3).

    The DAG is split into waves of four rounds; [round (w, k)] is round
    [4(w-1) + k] for [k] in [1..4]. When a process completes a wave it
    elects that wave's leader vertex retrospectively with the global
    coin and commits it if at least [2f+1] vertices of the wave's last
    round have a strong path to it. Committed leaders chain backwards
    through waves whose commit rule this process missed (Lines 39–43),
    and each leader's not-yet-delivered causal history is output in a
    deterministic order.

    This module is purely local: it reads the DAG and the (resolved)
    coin values and produces delivery events — exactly the paper's
    "zero extra communication" claim, kept testable by construction. *)

type t

type commit = {
  wave : int;               (** wave whose leader this is *)
  leader : Vertex.t;        (** the committed leader vertex *)
  delivered : Vertex.t list;(** newly delivered causal history, in order *)
  direct : bool;            (** committed by its own wave's commit rule
                                ([false] = chained from a later wave) *)
}

val create : ?wave_length:int -> ?commit_quorum:int -> f:int -> unit -> t
(** Defaults are the paper's: [wave_length = 4] and
    [commit_quorum = 2f + 1]. The ablation benches override them to
    demonstrate {e why} those are the right values (DESIGN.md §5) —
    shorter waves break the common-core argument, a weaker quorum breaks
    Lemma 1. *)

val round_of : ?wave_length:int -> wave:int -> k:int -> unit -> int
(** [round(w, k) = L(w-1) + k] for wave length [L] (default 4); [k] must
    be in [1..L]. @raise Invalid_argument otherwise. *)

val wave_of_completed_round : ?wave_length:int -> int -> int option
(** [Some w] if completing this round completes wave [w]
    (i.e. the round is [round(w, L)]), else [None]. *)

val leader_vertex :
  ?wave_length:int ->
  dag:Dag.t -> wave:int -> leader_source:int -> unit -> Vertex.t option
(** [get_wave_vertex_leader] (Line 46): the chosen process's vertex in
    the wave's first round, if the local DAG has it. *)

val commit_rule_met :
  ?wave_length:int -> ?commit_quorum:int ->
  dag:Dag.t -> f:int -> wave:int -> leader:Vertex.t -> unit -> bool
(** Line 36: do [>= commit_quorum] vertices in [round(w, L)] have a
    strong path to the leader? *)

val process_wave :
  t ->
  dag:Dag.t ->
  wave:int ->
  choose_leader:(int -> int) ->
  commit list
(** Handle [wave_ready w] with the coin outputs for all waves [<= w]
    available through [choose_leader]. Returns the commits produced (in
    delivery order: earliest wave first), each with its newly delivered
    vertices. Empty when the commit rule is not met — the wave is then
    left for a later wave's backward chain, exactly as in the paper.
    Waves at or below the decided wave are ignored. *)

val restore : t -> delivered:Vertex.t list -> decided_wave:int -> unit
(** Reload persisted progress into a {e fresh} ordering state: the
    vertices are marked delivered (in the given order) and the decided
    wave is set, so a restarted node neither re-delivers nor re-decides
    old waves. @raise Invalid_argument if the state is not fresh. *)

val decided_wave : t -> int

val delivered_log : t -> Vertex.t list
(** Every vertex delivered so far, oldest first — the process's totally
    ordered output (for cross-process agreement checks). *)

val delivered_count : t -> int

val is_delivered : t -> Vertex.vref -> bool
