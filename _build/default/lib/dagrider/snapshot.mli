(** DAG persistence: serialize a process's local DAG (and its delivered
    frontier) so a restarting process can resume from disk instead of
    replaying every reliable broadcast from round 1.

    The format is a framed sequence of vertex records in round order,
    each framed as [u32 round][u32 source][u32 len][Vertex.encode bytes],
    preceded by a magic header with [n] and the vertex count and followed
    by a SHA-256 checksum over everything before it. Restoring replays
    [Dag.add] in round order, so the store's "causal history present"
    invariant (Claim 1) is re-established — a corrupted or truncated file
    can never produce a DAG that violates it. *)

val dag_to_string : Dag.t -> string
(** Serialize every non-genesis vertex. *)

val dag_of_string : string -> (Dag.t, string) result
(** Rebuild a DAG. Fails with a reason on a bad magic, size mismatch,
    checksum mismatch, undecodable vertex, or a vertex set that is not
    causally closed. *)

val delivered_to_string : Vertex.vref list -> string
(** Persist the delivered frontier (the ordering layer's progress). *)

val delivered_of_string : string -> (Vertex.vref list, string) result
