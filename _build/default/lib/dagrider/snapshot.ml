let magic = "DAGSNAP1"

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let get_u32 s pos =
  if pos + 4 > String.length s then None
  else begin
    let b i = Char.code s.[pos + i] in
    Some (((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3, pos + 4))
  end

let dag_to_string dag =
  let vertices = Dag.vertices dag in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u32 buf (Dag.n dag);
  put_u32 buf (List.length vertices);
  List.iter
    (fun v ->
      let bytes = Vertex.encode v in
      put_u32 buf v.Vertex.round;
      put_u32 buf v.Vertex.source;
      put_u32 buf (String.length bytes);
      Buffer.add_string buf bytes)
    vertices;
  let body = Buffer.contents buf in
  body ^ Crypto.Sha256.digest_string body

let dag_of_string s =
  let ( let* ) = Result.bind in
  let fail msg = Error msg in
  let* () =
    if String.length s < String.length magic + 8 + 32 then fail "truncated"
    else Ok ()
  in
  let body = String.sub s 0 (String.length s - 32) in
  let checksum = String.sub s (String.length s - 32) 32 in
  let* () =
    if String.equal (Crypto.Sha256.digest_string body) checksum then Ok ()
    else fail "checksum mismatch"
  in
  let* () =
    if String.equal (String.sub body 0 (String.length magic)) magic then Ok ()
    else fail "bad magic"
  in
  let pos = String.length magic in
  let take_u32 pos =
    match get_u32 body pos with
    | Some r -> Ok r
    | None -> fail "truncated header"
  in
  let* n, pos = take_u32 pos in
  let* count, pos = take_u32 pos in
  let* () = if n > 0 && n <= 4096 then Ok () else fail "implausible n" in
  let dag = Dag.create ~n in
  let rec load i pos =
    if i = count then
      if pos = String.length body then Ok dag else fail "trailing bytes"
    else
      let* round, pos = take_u32 pos in
      let* source, pos = take_u32 pos in
      let* len, pos = take_u32 pos in
      if pos + len > String.length body then fail "truncated vertex"
      else begin
        let bytes = String.sub body pos len in
        match Vertex.decode ~round ~source bytes with
        | None -> fail (Printf.sprintf "undecodable vertex (%d, %d)" round source)
        | Some v -> (
          match Dag.add dag v with
          | () -> load (i + 1) (pos + len)
          | exception Invalid_argument _ ->
            fail
              (Printf.sprintf "vertex (%d, %d) is not causally closed" round
                 source))
      end
  in
  load 0 pos

let delivered_to_string refs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "DAGDELV1";
  put_u32 buf (List.length refs);
  List.iter
    (fun (r : Vertex.vref) ->
      put_u32 buf r.Vertex.round;
      put_u32 buf r.Vertex.source)
    refs;
  let body = Buffer.contents buf in
  body ^ Crypto.Sha256.digest_string body

let delivered_of_string s =
  let ( let* ) = Result.bind in
  let fail msg = Error msg in
  let* () = if String.length s >= 12 + 32 then Ok () else fail "truncated" in
  let body = String.sub s 0 (String.length s - 32) in
  let checksum = String.sub s (String.length s - 32) 32 in
  let* () =
    if String.equal (Crypto.Sha256.digest_string body) checksum then Ok ()
    else fail "checksum mismatch"
  in
  let* () =
    if String.equal (String.sub body 0 8) "DAGDELV1" then Ok ()
    else fail "bad magic"
  in
  let* count, pos =
    match get_u32 body 8 with Some r -> Ok r | None -> fail "truncated"
  in
  let rec load i pos acc =
    if i = count then
      if pos = String.length body then Ok (List.rev acc)
      else fail "trailing bytes"
    else
      match (get_u32 body pos, get_u32 body (pos + 4)) with
      | Some (round, _), Some (source, pos') ->
        load (i + 1) pos' ({ Vertex.round; source } :: acc)
      | _ -> fail "truncated entry"
  in
  load 0 pos []
