type vref = { round : int; source : int }

type t = {
  round : int;
  source : int;
  block : string;
  strong_edges : vref list;
  weak_edges : vref list;
}

let vref_of v = { round = v.round; source = v.source }

let compare_vref (a : vref) (b : vref) =
  match compare a.round b.round with
  | 0 -> compare a.source b.source
  | c -> c

(* Wire format, all integers as 4-byte big-endian:
   [block_len][block][n_strong][(round,source)*][n_weak][(round,source)*] *)

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Vertex.encode: value out of u32";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let get_u32 s pos =
  if pos + 4 > String.length s then None
  else begin
    let b i = Char.code s.[pos + i] in
    Some (((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3, pos + 4))
  end

let encode v =
  let buf = Buffer.create (String.length v.block + 64) in
  put_u32 buf (String.length v.block);
  Buffer.add_string buf v.block;
  let put_edges (edges : vref list) =
    put_u32 buf (List.length edges);
    List.iter
      (fun (e : vref) ->
        put_u32 buf e.round;
        put_u32 buf e.source)
      edges
  in
  put_edges v.strong_edges;
  put_edges v.weak_edges;
  Buffer.contents buf

let decode ~round ~source payload =
  let ( let* ) = Option.bind in
  let* block_len, pos = get_u32 payload 0 in
  if pos + block_len > String.length payload then None
  else begin
    let block = String.sub payload pos block_len in
    let pos = pos + block_len in
    let get_edges pos =
      let* count, pos = get_u32 payload pos in
      if count > String.length payload then None
      else begin
        let rec loop i pos acc =
          if i = count then Some (List.rev acc, pos)
          else
            let* r, pos = get_u32 payload pos in
            let* s, pos = get_u32 payload pos in
            loop (i + 1) pos ({ round = r; source = s } :: acc)
        in
        loop 0 pos []
      end
    in
    let* strong_edges, pos = get_edges pos in
    let* weak_edges, pos = get_edges pos in
    if pos <> String.length payload then None
    else Some { round; source; block; strong_edges; weak_edges }
  end

let validate ~n ~f v =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let edge_ok (e : vref) = e.source >= 0 && e.source < n in
  if v.round < 1 then fail "round %d < 1" v.round
  else if v.source < 0 || v.source >= n then fail "source %d out of range" v.source
  else if List.length v.strong_edges < (2 * f) + 1 then
    fail "only %d strong edges, need %d" (List.length v.strong_edges) ((2 * f) + 1)
  else if List.exists (fun (e : vref) -> e.round <> v.round - 1) v.strong_edges then
    fail "strong edge not to round %d" (v.round - 1)
  else if List.exists (fun (e : vref) -> e.round < 1 || e.round > v.round - 2) v.weak_edges
  then fail "weak edge outside rounds [1, %d]" (v.round - 2)
  else if (not (List.for_all edge_ok v.strong_edges)) || not (List.for_all edge_ok v.weak_edges)
  then fail "edge source out of range"
  else begin
    let all = v.strong_edges @ v.weak_edges in
    let dedup = List.sort_uniq compare_vref all in
    if List.length dedup <> List.length all then fail "duplicate edge target"
    else Ok ()
  end

let digest v =
  Crypto.Sha256.digest_string
    (Printf.sprintf "vertex:%d:%d:" v.round v.source ^ encode v)

let pp fmt v =
  Format.fprintf fmt "v(r=%d,p=%d,|b|=%d,s=%d,w=%d)" v.round v.source
    (String.length v.block)
    (List.length v.strong_edges)
    (List.length v.weak_edges)
