(* Eventual fairness, side by side (Table 1's last column).

   The adversary slows one victim process's messages by 12x. Under
   DAG-Rider, the victim's proposals are still woven into the total
   order: weak edges guarantee the Validity property (every correct
   proposal is eventually ordered). Under a VABA-based SMR, each slot
   delivers only the elected leader's proposal — the victim's batches
   lose every race and are simply never output; the protocol is live
   but not fair.

   Run with: dune exec examples/fairness_demo.exe *)

let victim = 3
let horizon = 120.0

let dagrider_side () =
  let schedule =
    Harness.Runner.Custom
      (fun rng ->
        Net.Sched.delay_process
          ~inner:(Net.Sched.uniform_random ~rng)
          ~victim ~factor:25.0)
  in
  let options =
    { (Harness.Runner.default_options ~n:4) with seed = 7; schedule }
  in
  let fleet = Harness.Runner.build options in
  Harness.Runner.run fleet ~until:horizon;
  let log = Dagrider.Node.delivered_log (Harness.Runner.node fleet 0) in
  let total = List.length log in
  let from_victim =
    List.length
      (List.filter (fun v -> v.Dagrider.Vertex.source = victim) log)
  in
  (total, from_victim)

let vaba_smr_side () =
  let rng = Stdx.Rng.create 7 in
  let sched_rng = Stdx.Rng.split rng in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched =
    Net.Sched.delay_process
      ~inner:(Net.Sched.uniform_random ~rng:sched_rng)
      ~victim ~factor:25.0
  in
  let n = 4 and f = 1 in
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
  let outputs = ref [] in
  let smr =
    Baselines.Smr.create ~engine ~counters ~sched ~auth ~coin
      ~protocol:Baselines.Smr.Vaba_smr ~n ~f ~concurrency:n ~total_slots:200
      ~batch:(fun ~slot ~me -> Printf.sprintf "s%d:from-p%d" slot me)
      ~on_output:(fun ~slot:_ ~value ~time:_ -> outputs := value :: !outputs)
      ()
  in
  Baselines.Smr.start smr;
  ignore (Sim.Engine.run engine ~until:horizon ());
  let total = List.length !outputs in
  let from_victim =
    List.length
      (List.filter
         (fun value ->
           match String.index_opt value 'p' with
           | Some i ->
             int_of_string_opt
               (String.sub value (i + 1) (String.length value - i - 1))
             = Some victim
           | None -> false)
         !outputs)
  in
  (total, from_victim)

let () =
  Printf.printf
    "victim p%d's messages are delayed 25x for %.0f time units.\n" victim
    horizon;
  Printf.printf "fair share would be 1/n = 25%% of ordered values.\n\n";
  let dr_total, dr_victim = dagrider_side () in
  let smr_total, smr_victim = vaba_smr_side () in
  Stdx.Table.print
    ~header:
      [ "protocol"; "values ordered"; "from victim"; "victim share"; "fair?" ]
    ~rows:
      [ [ "DAG-Rider";
          string_of_int dr_total;
          string_of_int dr_victim;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int dr_victim /. float_of_int (max 1 dr_total));
          (if float_of_int dr_victim /. float_of_int (max 1 dr_total) > 0.125
           then "yes (validity)" else "NO") ];
        [ "VABA SMR";
          string_of_int smr_total;
          string_of_int smr_victim;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int smr_victim /. float_of_int (max 1 smr_total));
          (if float_of_int smr_victim /. float_of_int (max 1 smr_total) < 0.125
           then "no (as Table 1 says)" else "unexpectedly yes") ] ];
  print_newline ();
  Printf.printf
    "DAG-Rider keeps ordering the slow process's proposals because every\n\
     correct process adds weak edges to otherwise-unreachable vertices; a\n\
     committed leader's causal history then drags them into the order.\n\
     VABA SMR outputs only slot winners, and a heavily slowed process\n\
     almost never wins a promotion race: its proposals stay censored for\n\
     as long as the adversary keeps delaying it.\n"
