(* Dealerless bootstrap: run the asynchronous distributed key generation
   ceremony (the paper's §2 relaxation of the trusted-dealer assumption),
   build the threshold coin from its output keys, and then run DAG-Rider
   on that coin — end to end, no dealer for the production keys.

   Run with: dune exec examples/dealerless.exe *)

let n = 4
let f = 1

let () =
  print_endline "phase 1: distributed key generation (no dealer for the output)";
  let rng = Stdx.Rng.create 2026 in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
  let net = Net.Network.create ~engine ~sched ~counters ~n in
  let vaba_net = Net.Network.create ~engine ~sched ~counters ~n in
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n in
  (* the agreement step inside the ceremony is bootstrapped by a
     pre-shared coin (DESIGN.md documents the substitution for the
     full KMS'20 proposal election); the generated key is dealer-free *)
  let bootstrap = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
  let keys = Array.make n None in
  let quals = Array.make n None in
  let parties =
    Array.init n (fun me ->
        Adkg.create ~net ~vaba_net ~auth ~bootstrap_coin:bootstrap
          ~rng:(Stdx.Rng.split rng) ~me ~f
          ~on_key:(fun ~key ~qualified ->
            keys.(me) <- Some key;
            quals.(me) <- Some qualified)
          ())
  in
  Array.iter Adkg.start parties;
  ignore (Sim.Engine.run engine ());
  let qualified = Option.get quals.(0) in
  Printf.printf
    "  ceremony done at t=%.1f: qualified dealers = {%s}, %d messages, %d bits\n"
    (Sim.Engine.now engine)
    (String.concat ", " (List.map (fun i -> Printf.sprintf "p%d" i) qualified))
    (Metrics.Counters.total_messages counters)
    (Metrics.Counters.total_bits counters);
  (* sanity: all f+1-subsets of keys interpolate to one master secret *)
  let key_arr = Array.map Option.get keys in
  let s_a = Crypto.Field.lagrange_at_zero [ (1, key_arr.(0)); (2, key_arr.(1)) ] in
  let s_b = Crypto.Field.lagrange_at_zero [ (3, key_arr.(2)); (4, key_arr.(3)) ] in
  Printf.printf "  sharing consistent across subsets: %b\n\n" (s_a = s_b);

  print_endline "phase 2: DAG-Rider on the generated coin (shares ride the DAG)";
  let coin = Crypto.Threshold_coin.of_keys ~n ~f ~keys:key_arr in
  let opts =
    { (Harness.Runner.default_options ~n) with
      seed = 2027;
      coin_override = Some coin;
      coin_in_dag = true (* footnote 1: no separate coin messages either *) }
  in
  let fleet = Harness.Runner.build opts in
  Harness.Runner.run fleet ~until:60.0;
  let node = Harness.Runner.node fleet 0 in
  Printf.printf "  delivered %d vertices over %d waves\n"
    (Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node))
    (Dagrider.Node.waves_completed node);
  (match Harness.Runner.check_total_order fleet with
  | Ok () -> print_endline "  total order across all processes: OK"
  | Error e -> print_endline ("  TOTAL ORDER VIOLATION: " ^ e));
  let coin_msgs =
    List.assoc_opt "coin-share"
      (Metrics.Counters.bits_by_kind (Harness.Runner.counters fleet))
  in
  Printf.printf "  separate coin messages sent: %s\n"
    (match coin_msgs with None -> "0 (shares ride vertices)" | Some b -> string_of_int b);
  print_endline
    "\nthe production keys came from the ceremony, not a dealer, and the\n\
     coin's agreement property is information-theoretic in those keys —\n\
     the paper's post-quantum-safety argument, end to end."
