(* A replicated key-value store on top of DAG-Rider: the classic SMR
   construction the paper's BAB abstraction exists to support (§3).

   Each replica submits SET commands through a_bcast; every replica
   applies the totally ordered command stream to its local map. Because
   the order is identical everywhere, so is the resulting state, even
   though commands race through an asynchronous network with conflicting
   writes to the same keys.

   Run with: dune exec examples/kv_store.exe *)

module StringMap = Map.Make (String)

type replica = {
  id : int;
  mutable state : string StringMap.t;
  mutable applied : int;
}

(* commands are "SET key value" strings, batched as workload txs *)
let parse_command body =
  match String.split_on_char ' ' body with
  | [ "SET"; key; value ] -> Some (key, value)
  | _ -> None

let apply_block replica block =
  List.iter
    (fun (tx : Workload.Txgen.tx) ->
      match parse_command tx.body with
      | Some (key, value) ->
        replica.state <- StringMap.add key value replica.state;
        replica.applied <- replica.applied + 1
      | None -> ())
    (Workload.Txgen.block_txs block)

let () =
  let n = 4 in
  let options = { (Harness.Runner.default_options ~n) with seed = 2024 } in
  let fleet = Harness.Runner.build options in
  let replicas =
    Array.init n (fun id -> { id; state = StringMap.empty; applied = 0 })
  in
  (* submit racing writes: every replica wants its own value for the
     shared keys, plus some private keys *)
  Array.iteri
    (fun i node ->
      let commands =
        [ { Workload.Txgen.owner = i; seqno = 0;
            body = Printf.sprintf "SET shared/leader replica-%d" i };
          { Workload.Txgen.owner = i; seqno = 1;
            body = Printf.sprintf "SET shared/config version-%d" (100 + i) };
          { Workload.Txgen.owner = i; seqno = 2;
            body = Printf.sprintf "SET private/%d mine" i } ]
      in
      Dagrider.Node.a_bcast node (Workload.Txgen.block_of_txs commands))
    (Harness.Runner.nodes fleet);
  Harness.Runner.run fleet ~until:40.0;
  (* replay each node's ordered log into its replica *)
  Array.iteri
    (fun i node ->
      List.iter
        (fun v -> apply_block replicas.(i) v.Dagrider.Vertex.block)
        (Dagrider.Node.delivered_log node))
    (Harness.Runner.nodes fleet);
  (* all replicas must have identical state *)
  let render replica =
    StringMap.bindings replica.state
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
    |> String.concat "; "
  in
  Printf.printf "replica states after convergence:\n";
  Array.iter
    (fun r ->
      Printf.printf "  replica %d (applied %d writes): %s\n" r.id r.applied
        (render r))
    replicas;
  let reference = render replicas.(0) in
  let all_equal =
    Array.for_all (fun r -> String.equal (render r) reference) replicas
  in
  Printf.printf "\nstate machine replication: %s\n"
    (if all_equal then "all replicas identical — OK" else "DIVERGED");
  (* conflicting writes to shared keys were resolved identically: print
     the winner the total order picked *)
  (match StringMap.find_opt "shared/leader" replicas.(0).state with
  | Some winner -> Printf.printf "conflicting SET shared/leader resolved to: %s\n" winner
  | None -> print_endline "shared/leader never written?");
  exit (if all_equal then 0 else 1)
