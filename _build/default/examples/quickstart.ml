(* Quickstart: run four DAG-Rider processes over the simulated
   asynchronous network, broadcast a few transactions, and print the
   totally ordered output.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a fleet: n = 4 processes, f = 1 tolerated fault, Bracha
     reliable broadcast, randomized asynchronous message delays. *)
  let options = Harness.Runner.default_options ~n:4 in
  let fleet = Harness.Runner.build options in

  (* 2. Atomically broadcast some payloads (a_bcast of the paper).
     Each lands in one of its proposer's upcoming DAG vertices. *)
  Array.iteri
    (fun i node ->
      Dagrider.Node.a_bcast node (Printf.sprintf "payment-%d-alpha" i);
      Dagrider.Node.a_bcast node (Printf.sprintf "payment-%d-beta" i))
    (Harness.Runner.nodes fleet);

  (* 3. Run 30 units of virtual time (1 unit = the max message delay of
     the paper's time-complexity analysis). *)
  Harness.Runner.run fleet ~until:30.0;

  (* 4. Every correct process now holds the same totally ordered log. *)
  let log = Dagrider.Node.delivered_log (Harness.Runner.node fleet 0) in
  Printf.printf "process 0 delivered %d vertices in total order:\n\n"
    (List.length log);
  List.iteri
    (fun i v ->
      if i < 24 then
        Printf.printf "  %2d. round=%-2d source=p%d block=%s\n" (i + 1)
          v.Dagrider.Vertex.round v.Dagrider.Vertex.source
          (if String.length v.Dagrider.Vertex.block > 28 then
             String.sub v.Dagrider.Vertex.block 0 28 ^ "..."
           else v.Dagrider.Vertex.block))
    log;
  if List.length log > 24 then
    Printf.printf "  ... and %d more\n" (List.length log - 24);

  (* 5. Check the BAB guarantees held. *)
  (match Harness.Runner.check_total_order fleet with
  | Ok () -> print_endline "\ntotal order across all processes: OK"
  | Error e -> print_endline ("\nTOTAL ORDER VIOLATION: " ^ e));
  Printf.printf "bits sent by honest processes: %d\n"
    (Harness.Runner.honest_bits fleet);
  Printf.printf "virtual time units elapsed: %.1f\n"
    (Sim.Engine.now (Harness.Runner.engine fleet))
