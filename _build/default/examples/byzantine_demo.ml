(* Byzantine-fault demonstration: f of the n = 3f+1 processes misbehave
   (silent crash plus live-but-Byzantine) while the adversary also runs
   a hostile message schedule. The remaining correct processes must keep
   agreeing on one total order and keep making progress — the paper's
   optimal-resilience claim, exercised end to end.

   Run with: dune exec examples/byzantine_demo.exe *)

let () =
  let n = 7 in
  let f = 2 in
  (* adversary: heavy-tailed delays PLUS a 25-time-unit window during
     which everything p2 sends is slowed 10x (targeted attack) *)
  let schedule =
    Harness.Runner.Custom
      (fun rng ->
        let inner = Net.Sched.skewed_random ~rng in
        let attack = Net.Sched.delay_process ~inner ~victim:2 ~factor:10.0 in
        Net.Sched.with_window ~inner ~from_time:10.0 ~until_time:35.0
          ~during:attack)
  in
  let options =
    { (Harness.Runner.default_options ~n) with
      seed = 99;
      schedule;
      faults = [ Harness.Runner.Crash 5; Harness.Runner.Byzantine_live 6 ] }
  in
  Printf.printf
    "n=%d f=%d | p5 crashed, p6 Byzantine-but-live, p2 under targeted delay\n\n"
    n f;
  let fleet = Harness.Runner.build options in
  Harness.Runner.run fleet ~until:100.0;

  (* progress at every correct process *)
  Printf.printf "%-8s %-10s %-8s %-8s\n" "process" "delivered" "round" "waves";
  List.iter
    (fun i ->
      let node = Harness.Runner.node fleet i in
      Printf.printf "p%-7d %-10d %-8d %-8d\n" i
        (Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node))
        (Dagrider.Node.current_round node)
        (Dagrider.Node.waves_completed node))
    (Harness.Runner.correct_indices fleet);

  (* safety *)
  (match Harness.Runner.check_total_order fleet with
  | Ok () -> print_endline "\nagreement: all correct logs prefix-consistent — OK"
  | Error e -> print_endline ("\nAGREEMENT VIOLATION: " ^ e));

  (* chain quality: the Byzantine-live process cannot dominate the order *)
  let sources =
    List.map
      (fun v -> v.Dagrider.Vertex.source)
      (Dagrider.Node.delivered_log (Harness.Runner.node fleet 0))
  in
  let report =
    Metrics.Chain_quality.audit ~f
      ~correct:(fun i -> Harness.Runner.is_correct fleet i)
      ~sources
  in
  Printf.printf
    "chain quality: %d/%d ordered vertices from correct processes (worst prefix ratio %.2f) — %s\n"
    report.Metrics.Chain_quality.correct_entries
    report.Metrics.Chain_quality.total report.Metrics.Chain_quality.worst_prefix_ratio
    (if report.Metrics.Chain_quality.holds then "bound holds" else "BOUND VIOLATED");

  (* the targeted process recovered after the attack window *)
  let victim_count =
    List.length (List.filter (fun s -> s = 2) sources)
  in
  Printf.printf
    "vertices from the attacked process p2 in the order: %d (validity despite the attack)\n"
    victim_count;

  (* show the local DAG around the current frontier *)
  let dag = Dagrider.Node.dag (Harness.Runner.node fleet 0) in
  let hi = Dagrider.Dag.highest_round dag in
  Printf.printf "\np0's DAG, rounds %d..%d ('*' vertex, '.'" (max 1 (hi - 7)) hi;
  print_endline " missing, 'wN' = N weak edges):";
  print_string (Dagrider.Render.ascii ~min_round:(max 1 (hi - 7)) ~max_round:hi dag)
