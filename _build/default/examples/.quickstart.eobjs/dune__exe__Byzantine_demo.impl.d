examples/byzantine_demo.ml: Dagrider Harness List Metrics Net Printf
