examples/quickstart.ml: Array Dagrider Harness List Printf Sim String
