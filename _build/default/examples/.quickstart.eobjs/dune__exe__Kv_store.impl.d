examples/kv_store.ml: Array Dagrider Harness List Map Printf String Workload
