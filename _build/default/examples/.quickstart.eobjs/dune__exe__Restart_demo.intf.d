examples/restart_demo.mli:
