examples/dealerless.mli:
