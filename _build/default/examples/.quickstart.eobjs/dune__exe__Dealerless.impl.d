examples/dealerless.ml: Adkg Array Crypto Dagrider Harness List Metrics Net Option Printf Sim Stdx String
