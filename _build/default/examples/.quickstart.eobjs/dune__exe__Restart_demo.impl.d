examples/restart_demo.ml: Dagrider Harness Printf String
