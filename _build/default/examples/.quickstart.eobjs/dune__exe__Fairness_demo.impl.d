examples/fairness_demo.ml: Baselines Crypto Dagrider Harness List Metrics Net Printf Sim Stdx String
