examples/quickstart.mli:
