(* Crash recovery: one process checkpoints (DAG snapshot + delivered
   log, through the real serialization), "crashes", restarts from the
   checkpoint, and catches back up with the live fleet through the sync
   protocol — no equivocation, no re-delivery, no divergence.

   Run with: dune exec examples/restart_demo.exe *)

let () =
  let fleet =
    Harness.Runner.build { (Harness.Runner.default_options ~n:4) with seed = 404 }
  in
  Harness.Runner.run fleet ~until:40.0;
  let progress i =
    Dagrider.Ordering.delivered_count
      (Dagrider.Node.ordering (Harness.Runner.node fleet i))
  in
  Printf.printf "t=40: all nodes delivered %d vertices; crashing p2...\n"
    (progress 2);
  let snapshot_size =
    String.length
      (Dagrider.Snapshot.dag_to_string
         (Dagrider.Node.dag (Harness.Runner.node fleet 2)))
  in
  (* restart_node serializes the checkpoint through Dagrider.Snapshot
     (checksummed), rebuilds the node, and schedules catch-up syncs *)
  Harness.Runner.restart_node fleet 2;
  Printf.printf "p2 restarted from a %d-byte DAG snapshot (round %d)\n"
    snapshot_size
    (Dagrider.Node.current_round (Harness.Runner.node fleet 2));
  Harness.Runner.run fleet ~until:100.0;
  Printf.printf "\nt=100 progress per node:\n";
  for i = 0 to 3 do
    Printf.printf "  p%d: %d vertices delivered%s\n" i (progress i)
      (if i = 2 then "  <- the restarted one" else "")
  done;
  (match Harness.Runner.check_total_order fleet with
  | Ok () -> print_endline "\ntotal order including the restarted node: OK"
  | Error e -> print_endline ("\nDIVERGENCE: " ^ e));
  Printf.printf
    "the restarted process neither re-broadcast an old round (no\n\
     equivocation) nor re-delivered anything; the sync protocol filled\n\
     the gap its reliable-broadcast instances missed while it was down.\n"
